//! `repro --data` — the paper's Fig. 6-style investment-efficiency sweep
//! over a user-supplied dataset (real SNAP edge list or `.oscg` binary)
//! instead of a synthetic Table II profile.
//!
//! The sweep *is* Fig. 6(a)/(b)'s — [`super::fig6::rate_and_benefit_sweep`]
//! runs here over the loaded instance, so the dataset path and the paper
//! figure can never drift apart. Running it on the same network in text and
//! binary form must produce byte-identical CSVs — CI enforces exactly that.

use crate::dataset::LoadedDataset;
use crate::effort::Effort;
use crate::table::Table;

/// Redemption rate and total benefit vs `Binv` on a loaded dataset, at
/// [`super::fig6::BUDGET_FACTORS`] multiples of the instance default.
pub fn budget_sweep(ds: &LoadedDataset, effort: &Effort) -> (Table, Table) {
    super::fig6::rate_and_benefit_sweep(
        &ds.graph,
        &ds.data,
        ds.budget,
        format!("Data: redemption rate vs Binv [{}]", ds.name),
        format!("Data: total benefit vs Binv [{}]", ds.name),
        effort,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::load_dataset;
    use crate::experiments::fig6::BUDGET_FACTORS;
    use crate::scenario::Algorithm;

    #[test]
    fn sweep_over_a_tiny_text_dataset_fills_both_tables() {
        let dir = s3crm_tests::TempDir::new("dataset-sweep");
        let path = dir.file("ring.txt");
        let mut text = String::from("# ring of 12 with chords\n");
        for i in 0u32..12 {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 12));
            text.push_str(&format!("{} {}\n", i, (i + 5) % 12));
        }
        std::fs::write(&path, text).unwrap();

        let mut effort = Effort::micro();
        effort.eval_worlds = 16;
        effort.im_worlds = 4;
        let ds = load_dataset(&path, &effort).unwrap();
        let (rate, benefit) = budget_sweep(&ds, &effort);
        assert_eq!(rate.rows.len(), BUDGET_FACTORS.len());
        assert_eq!(benefit.rows.len(), BUDGET_FACTORS.len());
        assert_eq!(rate.headers.len(), 1 + Algorithm::PAPER_SET.len());
        // Rates are probabilities; a malformed workload would blow past 1.
        for row in &rate.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0001).contains(&v), "rate {v} out of range");
            }
        }
    }
}
