//! Extension experiments: ablations of S3CA's design choices (DESIGN.md's
//! ablation index). Not in the paper, but they quantify the claims its
//! design sections make.
//!
//! * **Phase ablation** — ID only vs the full ID+GPI+SCM pipeline: what the
//!   guaranteed-path maneuvering actually buys (the paper's Example 3
//!   claims up to 380% on a toy).
//! * **Evaluator ablation** — the analytic spread evaluator vs Monte-Carlo
//!   at several world counts: the `(1−ε)` accuracy/latency trade-off behind
//!   Lemma 2.

use crate::effort::Effort;
use crate::table::{num, Table};
use osn_gen::DatasetProfile;
use osn_propagation::evaluator::BenefitEvaluator;
use osn_propagation::{AnalyticEvaluator, McBackend};
use s3crm_core::s3ca;
use std::time::Instant;

/// Phase ablation across budget factors.
pub fn phase_ablation(profile: DatasetProfile, effort: &Effort) -> Table {
    let inst = crate::dataset::profile_instance(profile, effort);
    let mut table = Table::new(
        format!("Ablation: S3CA phases [{}]", profile.name()),
        &[
            "Binv",
            "ID-only rate",
            "full rate",
            "gain%",
            "ID ms",
            "GPI+SCM ms",
        ],
    );
    for factor in [0.6, 1.0, 1.4] {
        let binv = inst.budget * factor;
        let id_only = s3ca(&inst.graph, &inst.data, binv, &effort.s3ca_id_only());
        let full = s3ca(&inst.graph, &inst.data, binv, &effort.s3ca_config());
        let gain = if id_only.objective.rate > 0.0 {
            (full.objective.rate / id_only.objective.rate - 1.0) * 100.0
        } else {
            0.0
        };
        table.push_row(vec![
            num(binv),
            num(id_only.objective.rate),
            num(full.objective.rate),
            num(gain),
            num(full.telemetry.id_micros as f64 / 1e3),
            num((full.telemetry.gpi_micros + full.telemetry.scm_micros) as f64 / 1e3),
        ]);
    }
    table
}

/// Evaluator ablation: benefit estimates and latency of the analytic
/// evaluator vs Monte-Carlo at increasing world counts, on the S3CA
/// deployment for the instance.
pub fn evaluator_ablation(profile: DatasetProfile, effort: &Effort) -> Table {
    let inst = crate::dataset::profile_instance(profile, effort);
    let dep = s3ca(&inst.graph, &inst.data, inst.budget, &effort.s3ca_config()).deployment;

    let mut table = Table::new(
        format!("Ablation: benefit evaluator [{}]", profile.name()),
        &["evaluator", "benefit", "rel.err%", "time_us"],
    );

    // Reference: the largest Monte-Carlo estimate.
    let ref_backend = McBackend::sample(&inst.graph, effort.eval_worlds * 4, effort.seed ^ 0xBEEF);
    let reference = ref_backend
        .evaluator(&inst.graph, &inst.data)
        .expected_benefit(&dep.seeds, &dep.coupons);

    let t0 = Instant::now();
    let analytic =
        AnalyticEvaluator::new(&inst.graph, &inst.data).expected_benefit(&dep.seeds, &dep.coupons);
    let analytic_us = t0.elapsed().as_micros() as f64;
    table.push_row(vec![
        "analytic".into(),
        num(analytic),
        num((analytic / reference - 1.0).abs() * 100.0),
        num(analytic_us),
    ]);

    for worlds in [16, 64, 256] {
        let backend = McBackend::sample(&inst.graph, worlds, effort.seed ^ 0xAB);
        let ev = backend.evaluator(&inst.graph, &inst.data);
        let t1 = Instant::now();
        let est = ev.expected_benefit(&dep.seeds, &dep.coupons);
        let us = t1.elapsed().as_micros() as f64;
        table.push_row(vec![
            format!("MC-{worlds}"),
            num(est),
            num((est / reference - 1.0).abs() * 100.0),
            num(us),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_ablation_never_reports_regression() {
        let effort = Effort {
            graph_scale: 0.04,
            eval_worlds: 16,
            im_worlds: 8,
            seed: 9,
            estimator: s3crm_core::EstimatorBackend::Mc,
            ..Effort::micro()
        };
        let t = phase_ablation(DatasetProfile::Facebook, &effort);
        for row in &t.rows {
            let gain: f64 = row[3].parse().unwrap_or(0.0);
            assert!(gain >= -1e-6, "SCM must not reduce the rate: {row:?}");
        }
    }
}
