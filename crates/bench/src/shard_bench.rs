//! The `shard_cascade` trajectory benchmark: the out-of-core proof run
//! behind the sharded `.oscg` format.
//!
//! One process does the whole pipeline so the kernel's `VmHWM` covers every
//! phase: stream-generate a power-law-cluster graph **directly** into a
//! sharded v2 `.oscg` file (`osn_gen::stream` — the full edge list never
//! exists in memory), open it with an LRU shard-residency budget
//! ([`osn_graph::ShardedOscg`]), and run a degree-ranked budgeted
//! investment-deployment (ID) pass evaluated with the shard-local scalar
//! cascade kernel ([`osn_propagation::reach::world_cascade_shards`]) over
//! deterministically hash-sampled worlds. The headline number is
//! `peak_rss / file_bytes`: the acceptance bar for the out-of-core path is
//! that it stays **well below 1** even when the graph dwarfs the residency
//! budget.
//!
//! Every phase is deterministic in `seed` (generation, world coins, and the
//! degree-greedy deployment all derive from it), so a point is reproducible
//! bit-for-bit — modulo the wall-clock and RSS columns, which is why the
//! trajectory file keeps them in separate fields.

use osn_gen::stream::{stream_powerlaw_cluster_oscg, StreamConfig};
use osn_graph::{NodeId, ShardedOscg};
use osn_propagation::reach::{world_cascade_shards, CascadeScratch};
use osn_propagation::WorldRef;
use std::path::{Path, PathBuf};

/// Knobs of one `bench shard_cascade` run.
#[derive(Clone, Debug)]
pub struct ShardBenchConfig {
    /// Node count of the generated graph.
    pub nodes: usize,
    /// Holme–Kim attachment count (≈ undirected edges per new node; the
    /// directed edge count is about `2 · nodes · edges_per_node`).
    pub edges_per_node: usize,
    /// Shard count of the generated file.
    pub shards: usize,
    /// LRU shard-residency budget, in MiB.
    pub resident_mb: usize,
    /// Hash-sampled worlds the deployment is evaluated on.
    pub worlds: usize,
    /// Coupons allocated per funded node.
    pub coupons_per_node: u32,
    /// Cap on the seed set (the budget usually binds first on big runs).
    pub seeds_cap: usize,
    /// Master seed for generation, world coins, and the deployment.
    pub seed: u64,
    /// Where the generated `.oscg` lands.
    pub file: PathBuf,
    /// Keep the generated file instead of removing it at the end.
    pub keep: bool,
}

impl Default for ShardBenchConfig {
    fn default() -> Self {
        ShardBenchConfig {
            nodes: 50_000,
            edges_per_node: 8,
            shards: 8,
            resident_mb: 64,
            worlds: 4,
            coupons_per_node: 3,
            seeds_cap: 64,
            seed: 42,
            file: PathBuf::from("shard_cascade.oscg"),
            keep: false,
        }
    }
}

/// One measured `shard_cascade` trajectory point.
#[derive(Clone, Debug)]
pub struct ShardBenchPoint {
    pub nodes: u64,
    pub directed_edges: u64,
    pub shards: usize,
    pub file_bytes: u64,
    pub resident_budget_bytes: u64,
    pub worlds: usize,
    pub seeds: usize,
    pub funded_nodes: usize,
    pub budget: f64,
    pub mean_benefit: f64,
    pub mean_activated: f64,
    pub gen_secs: f64,
    pub open_secs: f64,
    pub id_secs: f64,
    /// `VmHWM` right after generation finished (the generator's own peak).
    pub gen_peak_rss_bytes: u64,
    /// `VmHWM` at the end of the run (peak across all phases).
    pub peak_rss_bytes: u64,
    /// `peak_rss_bytes / file_bytes` — the out-of-core headline.
    pub rss_to_file_ratio: f64,
    pub shard_loads: u64,
    pub shard_evictions: u64,
    pub max_resident_shards: usize,
}

impl ShardBenchPoint {
    /// The point as one JSON object (hand-rolled: the trajectory file is
    /// consumed by humans and plotting scripts, not by serde).
    pub fn to_json(&self, unix_secs: u64) -> String {
        format!(
            "{{\"bench\": \"shard_cascade\", \"unix_secs\": {}, \"nodes\": {}, \
             \"directed_edges\": {}, \"shards\": {}, \"file_bytes\": {}, \
             \"resident_budget_bytes\": {}, \"worlds\": {}, \"seeds\": {}, \
             \"funded_nodes\": {}, \"budget\": {}, \"mean_benefit\": {}, \
             \"mean_activated\": {}, \"gen_secs\": {:.3}, \"open_secs\": {:.3}, \
             \"id_secs\": {:.3}, \"gen_peak_rss_bytes\": {}, \"peak_rss_bytes\": {}, \
             \"rss_to_file_ratio\": {:.4}, \"shard_loads\": {}, \
             \"shard_evictions\": {}, \"max_resident_shards\": {}}}",
            unix_secs,
            self.nodes,
            self.directed_edges,
            self.shards,
            self.file_bytes,
            self.resident_budget_bytes,
            self.worlds,
            self.seeds,
            self.funded_nodes,
            self.budget,
            self.mean_benefit,
            self.mean_activated,
            self.gen_secs,
            self.open_secs,
            self.id_secs,
            self.gen_peak_rss_bytes,
            self.peak_rss_bytes,
            self.rss_to_file_ratio,
            self.shard_loads,
            self.shard_evictions,
            self.max_resident_shards,
        )
    }
}

/// The process's peak resident set (`VmHWM`) in bytes, from
/// `/proc/self/status`. `None` where procfs is unavailable — callers
/// report 0 and say so rather than failing the run.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Append one JSON object to a `BENCH_*.json` trajectory file, keeping the
/// file a valid JSON array. A missing or empty file starts a new array;
/// an existing array gets the point appended before the closing bracket.
pub fn append_trajectory_point(path: &Path, json: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim();
    let body = trimmed
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .map(|s| s.trim().trim_end_matches(','))
        .unwrap_or("");
    let mut out = String::from("[\n");
    if !body.is_empty() {
        out.push_str(body);
        out.push_str(",\n");
    }
    out.push_str(json);
    out.push_str("\n]\n");
    std::fs::write(path, out)
}

/// SplitMix64 — the per-edge coin hash. Counter-based (no sequential RNG
/// state), so world `w`'s coin for edge `e` is a pure function of
/// `(seed, w, e)`: independent of shard count, scan order, and residency.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The world-`w` coin for global edge `e`: uniform in `[0, 1)`.
#[inline]
fn edge_coin(seed: u64, w: usize, e: u64) -> f64 {
    let h = splitmix64(seed ^ (w as u64).wrapping_mul(0xd6e8_feb8_6659_fd93) ^ e);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Run the benchmark. Returns the measured point; the generated file is
/// removed afterwards unless `cfg.keep` is set.
pub fn run(cfg: &ShardBenchConfig) -> Result<ShardBenchPoint, String> {
    let t0 = std::time::Instant::now();
    let mut gen_cfg = StreamConfig::new(cfg.nodes, cfg.edges_per_node, 0.3, cfg.seed);
    gen_cfg.shards = cfg.shards;
    let stats = stream_powerlaw_cluster_oscg(&cfg.file, &gen_cfg)
        .map_err(|e| format!("streamed generation failed: {e}"))?;
    let gen_secs = t0.elapsed().as_secs_f64();
    let gen_peak_rss_bytes = peak_rss_bytes().unwrap_or(0);

    let result = run_id_phase(cfg, &stats, gen_secs, gen_peak_rss_bytes);
    if !cfg.keep {
        std::fs::remove_file(&cfg.file).ok();
    }
    result
}

fn run_id_phase(
    cfg: &ShardBenchConfig,
    stats: &osn_gen::stream::StreamedStats,
    gen_secs: f64,
    gen_peak_rss_bytes: u64,
) -> Result<ShardBenchPoint, String> {
    let budget_bytes = cfg.resident_mb.max(1) * (1 << 20);
    let t1 = std::time::Instant::now();
    let sharded = ShardedOscg::open_with_budget(&cfg.file, Some(budget_bytes))
        .map_err(|e| format!("open failed: {e}"))?;
    let open_secs = t1.elapsed().as_secs_f64();
    let workload = sharded
        .workload()
        .ok_or("streamed file carries no workload")?
        .clone();
    let n = sharded.node_count();
    let m = sharded.edge_count() as u64;

    let t2 = std::time::Instant::now();
    // Degree scan, shard at a time through the LRU: keep the top
    // `seeds_cap` nodes by (out-degree desc, id asc) as the candidate pool.
    let mut candidates: Vec<(u64, u32)> = Vec::new(); // (degree, node)
    let mut max_resident = 0usize;
    for s in 0..sharded.shard_count() {
        let shard = sharded.shard(s);
        for lv in 0..shard.node_count() {
            let deg = shard.offsets[lv + 1] - shard.offsets[lv];
            let v = shard.node_start + lv as u32;
            if candidates.len() < cfg.seeds_cap.max(1) {
                candidates.push((deg, v));
                if candidates.len() == cfg.seeds_cap.max(1) {
                    candidates.sort_unstable_by_key(|&(d, v)| (std::cmp::Reverse(d), v));
                }
            } else if deg > candidates.last().unwrap().0 {
                candidates.pop();
                let at = candidates.partition_point(|&(d, cv)| {
                    (std::cmp::Reverse(d), cv) < (std::cmp::Reverse(deg), v)
                });
                candidates.insert(at, (deg, v));
            }
        }
        max_resident = max_resident.max(sharded.residency_stats().0);
    }
    candidates.sort_unstable_by_key(|&(d, v)| (std::cmp::Reverse(d), v));

    // Budgeted investment deployment: seed the highest-degree candidates
    // until half the budget is spent on seed costs, then fund coupons down
    // the same ranking until the budget is exhausted. A deliberate
    // degree-greedy stand-in for the full S3CA ID phase — the benchmark
    // measures the out-of-core execution path, not selection quality.
    let budget = workload.budget;
    let data = &workload.data;
    let mut seeds: Vec<NodeId> = Vec::new();
    let mut coupons = vec![0u32; n];
    let mut spent = 0.0f64;
    for &(_, v) in &candidates {
        let c = data.seed_cost(NodeId(v));
        if spent + c > budget * 0.5 || seeds.len() >= cfg.seeds_cap.max(1) {
            break;
        }
        seeds.push(NodeId(v));
        spent += c;
    }
    if seeds.is_empty() {
        if let Some(&(_, v)) = candidates.first() {
            seeds.push(NodeId(v));
        }
    }
    let mut funded = 0usize;
    for &(_, v) in &candidates {
        let c = data.sc_cost(NodeId(v)) * cfg.coupons_per_node as f64;
        if spent + c > budget {
            break;
        }
        coupons[v as usize] = cfg.coupons_per_node;
        spent += c;
        funded += 1;
    }

    // Evaluate the deployment over hash-sampled worlds with the sharded
    // scalar kernel. Live edges are collected per world by scanning each
    // shard's probability slice (ascending global edge id by construction),
    // so the evaluation reads the file exactly the way the residency budget
    // meters it.
    let mut scratch = CascadeScratch::new(n);
    let mut live: Vec<u32> = Vec::new();
    let mut total_benefit = 0.0f64;
    let mut total_activated = 0usize;
    for w in 0..cfg.worlds.max(1) {
        live.clear();
        for s in 0..sharded.shard_count() {
            let shard = sharded.shard(s);
            let base = shard.fwd_edge_start;
            for (i, &p) in shard.probs.iter().enumerate() {
                let e = base + i as u64;
                if edge_coin(cfg.seed, w, e) < p {
                    live.push(e as u32);
                }
            }
            max_resident = max_resident.max(sharded.residency_stats().0);
        }
        let outcome = world_cascade_shards(
            &sharded,
            data,
            &seeds,
            &coupons,
            WorldRef::Sparse(&live),
            &mut scratch,
            |_| {},
        );
        total_benefit += outcome.benefit;
        total_activated += outcome.activated;
    }
    let worlds = cfg.worlds.max(1);
    let id_secs = t2.elapsed().as_secs_f64();
    let (_, _, loads, evictions) = sharded.residency_stats();
    let peak = peak_rss_bytes().unwrap_or(0);
    Ok(ShardBenchPoint {
        nodes: n as u64,
        directed_edges: m,
        shards: sharded.shard_count(),
        file_bytes: stats.file_bytes,
        resident_budget_bytes: budget_bytes as u64,
        worlds,
        seeds: seeds.len(),
        funded_nodes: funded,
        budget,
        mean_benefit: total_benefit / worlds as f64,
        mean_activated: total_activated as f64 / worlds as f64,
        gen_secs,
        open_secs,
        id_secs,
        gen_peak_rss_bytes,
        peak_rss_bytes: peak,
        rss_to_file_ratio: peak as f64 / stats.file_bytes.max(1) as f64,
        shard_loads: loads,
        shard_evictions: evictions,
        max_resident_shards: max_resident,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3crm_tests::TempDir;

    fn small_cfg(dir: &TempDir, tag: &str) -> ShardBenchConfig {
        ShardBenchConfig {
            nodes: 600,
            edges_per_node: 3,
            shards: 3,
            resident_mb: 1,
            worlds: 2,
            seeds_cap: 8,
            file: dir.file(&format!("{tag}.oscg")),
            ..ShardBenchConfig::default()
        }
    }

    #[test]
    fn bench_runs_and_measures() {
        let dir = TempDir::new("shard-bench");
        let cfg = small_cfg(&dir, "run");
        let p = run(&cfg).expect("bench run");
        assert_eq!(p.nodes, 600);
        assert_eq!(p.shards, 3);
        assert!(p.directed_edges > 0 && p.file_bytes > 0);
        assert!(p.seeds >= 1 && p.funded_nodes >= 1);
        assert!(p.mean_benefit > 0.0 && p.mean_activated >= p.seeds as f64);
        assert!(p.shard_loads >= 3, "every shard is read at least once");
        // The generated file is removed unless `keep` is set.
        assert!(!cfg.file.exists());
        // VmHWM is monotone across phases.
        assert!(p.peak_rss_bytes >= p.gen_peak_rss_bytes);
    }

    #[test]
    fn deployment_and_estimates_are_deterministic() {
        let dir = TempDir::new("shard-bench-det");
        let a = run(&small_cfg(&dir, "a")).expect("first run");
        let b = run(&small_cfg(&dir, "b")).expect("second run");
        assert_eq!(a.mean_benefit.to_bits(), b.mean_benefit.to_bits());
        assert_eq!(a.mean_activated.to_bits(), b.mean_activated.to_bits());
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.funded_nodes, b.funded_nodes);
        assert_eq!(a.directed_edges, b.directed_edges);
    }

    #[test]
    fn trajectory_file_stays_a_json_array() {
        let dir = TempDir::new("shard-bench-json");
        let path = dir.file("BENCH_TRAJECTORY.json");
        append_trajectory_point(&path, "{\"bench\": \"a\"}").unwrap();
        append_trajectory_point(&path, "{\"bench\": \"b\"}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let trimmed = text.trim();
        assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{text}");
        assert_eq!(text.matches("\"bench\"").count(), 2, "{text}");
        // Appending to a hand-emptied array restarts cleanly.
        std::fs::write(&path, "[]\n").unwrap();
        append_trajectory_point(&path, "{\"bench\": \"c\"}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"bench\"").count(), 1, "{text}");
    }

    #[test]
    fn edge_coins_are_stable_functions_of_seed_world_edge() {
        assert_eq!(
            edge_coin(7, 3, 1234).to_bits(),
            edge_coin(7, 3, 1234).to_bits()
        );
        assert_ne!(
            edge_coin(7, 3, 1234).to_bits(),
            edge_coin(7, 4, 1234).to_bits()
        );
        for w in 0..4 {
            for e in 0..64u64 {
                let c = edge_coin(1, w, e);
                assert!((0.0..1.0).contains(&c));
            }
        }
    }
}
