//! Experiment sizing.
//!
//! The paper's full datasets range up to 5.5M nodes / 86M edges; the
//! harness scales each profile down so a complete reproduction runs on a
//! laptop in minutes. [`Effort::full`] restores larger fractions for
//! overnight runs.

use osn_gen::DatasetProfile;
use osn_propagation::{CascadeKernel, WorldCache, WorldStorage};
use s3crm_core::{EstimatorBackend, S3caConfig};
use serde::{Deserialize, Serialize};

/// Global knobs shared by every experiment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Effort {
    /// Multiplier on each profile's base scale (1.0 = the preset below).
    pub graph_scale: f64,
    /// Worlds in the evaluation cache (Monte-Carlo reports).
    pub eval_worlds: usize,
    /// Worlds used inside the IM baselines' greedy selection.
    pub im_worlds: usize,
    /// Deterministic master seed.
    pub seed: u64,
    /// Estimation backend driving S3CA's ID phase (`--estimator`).
    pub estimator: EstimatorBackend,
    /// World-cache storage for every cache this effort samples
    /// (`--world-storage`). Representation only — threaded explicitly from
    /// here through each experiment; there is no process-wide default to
    /// race.
    pub world_storage: WorldStorage,
    /// Cascade kernel for every evaluator this effort stands up
    /// (`--cascade-kernel`). Execution strategy only; same threading.
    pub cascade_kernel: CascadeKernel,
}

impl Effort {
    /// Minutes-scale preset used by the `repro` binary by default.
    pub fn quick() -> Self {
        Effort {
            graph_scale: 1.0,
            eval_worlds: 200,
            im_worlds: 24,
            seed: 42,
            estimator: EstimatorBackend::Mc,
            world_storage: WorldStorage::default(),
            cascade_kernel: CascadeKernel::default(),
        }
    }

    /// Smaller preset for Criterion micro-benches (seconds-scale kernels).
    pub fn micro() -> Self {
        Effort {
            graph_scale: 0.3,
            eval_worlds: 64,
            im_worlds: 8,
            seed: 42,
            estimator: EstimatorBackend::Mc,
            world_storage: WorldStorage::default(),
            cascade_kernel: CascadeKernel::default(),
        }
    }

    /// Larger preset for overnight runs.
    pub fn full() -> Self {
        Effort {
            graph_scale: 4.0,
            eval_worlds: 1000,
            im_worlds: 64,
            seed: 42,
            estimator: EstimatorBackend::Mc,
            world_storage: WorldStorage::default(),
            cascade_kernel: CascadeKernel::default(),
        }
    }

    /// The [`S3caConfig`] this effort implies: the default full pipeline
    /// under the selected estimation backend, storage, and kernel.
    pub fn s3ca_config(&self) -> S3caConfig {
        S3caConfig {
            estimator: self.estimator,
            world_storage: self.world_storage,
            cascade_kernel: self.cascade_kernel,
            ..S3caConfig::default()
        }
    }

    /// As [`s3ca_config`](Self::s3ca_config), ID phase only.
    pub fn s3ca_id_only(&self) -> S3caConfig {
        S3caConfig {
            estimator: self.estimator,
            world_storage: self.world_storage,
            cascade_kernel: self.cascade_kernel,
            ..S3caConfig::id_only()
        }
    }

    /// Sample `count` worlds seeded from `seed` in this effort's storage on
    /// the shared global pool — the one choke point every experiment's
    /// cache sampling goes through, so `--world-storage` reaches all of
    /// them without any process-global state.
    pub fn sample_worlds(
        &self,
        graph: &osn_graph::CsrGraph,
        count: usize,
        seed: u64,
    ) -> WorldCache {
        WorldCache::sample_with_storage(graph, count, seed, self.world_storage, osn_pool::global())
    }

    /// The effective generation scale for a profile: a per-profile base
    /// fraction (keeping every dataset in the same runtime ballpark) times
    /// the global multiplier, clamped to the generator's `(0, 1]` domain.
    /// The floor is per profile — the smallest scale at which `nodes ×
    /// scale` still rounds to at least one node (a fixed `1e-6` floor
    /// rounded every profile under ~500k nodes down to a 0-node graph for
    /// tiny `--scale` values).
    pub fn profile_scale(&self, profile: DatasetProfile) -> f64 {
        let base = match profile {
            DatasetProfile::Facebook => 0.25,   // 1 000 nodes at quick
            DatasetProfile::Epinions => 0.02,   // 1 520 nodes
            DatasetProfile::GooglePlus => 0.01, // 1 080 nodes
            DatasetProfile::Douban => 0.0004,   // 2 200 nodes
        };
        let min_scale = (1.0 / profile.nodes() as f64).min(1.0);
        (base * self.graph_scale).clamp(min_scale, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let m = Effort::micro();
        let q = Effort::quick();
        let f = Effort::full();
        assert!(f.graph_scale > q.graph_scale);
        assert!(f.eval_worlds > q.eval_worlds);
        // Micro sits strictly below quick on every sizing knob (it exists
        // so benches and smoke tests stay seconds-scale).
        assert!(m.graph_scale < q.graph_scale);
        assert!(m.eval_worlds < q.eval_worlds);
        assert!(m.im_worlds < q.im_worlds);
        assert!(q.eval_worlds <= f.eval_worlds && q.im_worlds <= f.im_worlds);
    }

    #[test]
    fn profile_scale_clamps() {
        let mut e = Effort::full();
        e.graph_scale = 1e9;
        assert_eq!(e.profile_scale(DatasetProfile::Facebook), 1.0);
    }

    #[test]
    fn degenerate_scale_floors_at_one_node() {
        // A fixed 1e-6 floor used to round every profile under ~500k nodes
        // to a 0-node graph; the floor must instead keep `nodes × scale`
        // rounding to ≥ 1 for every profile.
        let mut e = Effort::quick();
        e.graph_scale = 1e-12;
        for profile in DatasetProfile::ALL {
            let scale = e.profile_scale(profile);
            assert!(scale > 0.0 && scale <= 1.0, "{profile:?} scale {scale}");
            let n = (profile.nodes() as f64 * scale).round() as usize;
            assert!(n >= 1, "{profile:?} rounds to {n} nodes at scale {scale}");
        }
    }

    #[test]
    fn degenerate_scale_runs_end_to_end() {
        // The floored scale must survive the whole pipeline: generate the
        // instance and run S3CA on it (the generator enforces its own
        // minimum of a valid attachment graph, so this exercises both
        // floors composing).
        let mut e = Effort::micro();
        e.graph_scale = 1e-12;
        let inst = DatasetProfile::Facebook
            .generate(e.profile_scale(DatasetProfile::Facebook), e.seed)
            .expect("degenerate-scale generation");
        assert!(inst.graph.node_count() >= 1);
        let result = s3crm_core::s3ca(&inst.graph, &inst.data, inst.budget, &e.s3ca_config());
        assert!(result.objective.benefit.is_finite());
    }

    #[test]
    fn quick_facebook_is_about_a_thousand_nodes() {
        let e = Effort::quick();
        let n = (DatasetProfile::Facebook.nodes() as f64
            * e.profile_scale(DatasetProfile::Facebook))
        .round() as usize;
        assert_eq!(n, 1000);
    }
}
