//! Instance sourcing for the harness: generated Table II profiles (with an
//! optional on-disk `.oscg` cache) and user-supplied datasets loaded from
//! plain-text SNAP edge lists or binary `.oscg` files.
//!
//! This is the single choke point every experiment goes through to obtain a
//! [`GeneratedInstance`], which is what lets `repro --cache DIR` memoize
//! generation and `repro --data PATH` substitute a real network for the
//! synthetic profiles without touching any experiment code.

use crate::effort::Effort;
use osn_gen::attrs::standard_workload;
use osn_gen::profiles::GeneratedInstance;
use osn_gen::weights::{assign_weights, WeightModel};
use osn_gen::{seeded_rng, DatasetProfile};
use osn_graph::shard::{write_sharded_oscg_atomic, ShardPlan};
use osn_graph::{binary, io, CsrGraph, GraphError, NodeData};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Salt mixed into `effort.seed` for synthesized dataset workloads, so they
/// are independent of the evaluation-world streams.
const WORKLOAD_SALT: u64 = 0x0DA7_A5E7;

/// Workload defaults for datasets that carry no attributes (the Sec. VI-A
/// Facebook setting: benefits N(10, 2), λ = 1, κ = 10).
const DEFAULT_MU: f64 = 10.0;
const DEFAULT_SIGMA: f64 = 2.0;
const DEFAULT_LAMBDA: f64 = 1.0;
const DEFAULT_KAPPA: f64 = 10.0;

static CACHE_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Route every subsequent [`profile_instance`] call through an `.oscg`
/// cache in `dir` (see [`osn_gen::cache`]). Set once, before experiments
/// run — the `repro` binary wires `--cache DIR` here.
pub fn set_cache_dir(dir: PathBuf) {
    CACHE_DIR
        .set(dir)
        .expect("duplicate --cache: cache directory already chosen");
}

/// Generate a profile instance at the effort's scale — through the `.oscg`
/// cache when one was configured with [`set_cache_dir`], fresh otherwise.
/// Cached and fresh instances are bit-identical (pinned in `osn_gen::cache`
/// tests), so experiments cannot tell the difference.
pub fn profile_instance(profile: DatasetProfile, effort: &Effort) -> GeneratedInstance {
    let scale = effort.profile_scale(profile);
    match CACHE_DIR.get() {
        Some(dir) => osn_gen::cache::generate_cached(profile, scale, effort.seed, dir)
            .expect("cached profile generation"),
        None => profile
            .generate(scale, effort.seed)
            .expect("profile generation"),
    }
}

/// A user-supplied dataset loaded from disk, shaped like a generated
/// instance so the runner consumes both identically.
#[derive(Clone, Debug)]
pub struct LoadedDataset {
    /// File stem, used in table titles and CSV names.
    pub name: String,
    pub graph: CsrGraph,
    pub data: NodeData,
    /// The instance budget: the file's own (binary workload block) or the
    /// synthesized default.
    pub budget: f64,
}

/// Read just the graph from `path`, auto-detecting the format.
///
/// * `.oscg` magic → the binary loader (zero-copy mapped where possible);
///   a workload block, if present, rides along.
/// * anything else → SNAP-style text edge list. When **no** line carries an
///   explicit probability column, edges get the paper's default
///   `P(e(i,j)) = 1 / in-degree(v_j)` weights; if *any* line carries one,
///   the file's probabilities are kept as-is — explicit zeros included (a
///   deliberately dead edge stays dead).
///
/// The text path and `repro convert` share this exact policy, which is what
/// makes the text-vs-binary CSV drift check in CI meaningful.
pub fn load_graph(path: &Path) -> Result<(CsrGraph, Option<binary::Workload>), GraphError> {
    if binary::sniff_is_oscg(path)? {
        let file = binary::load_oscg(path)?;
        return Ok((file.graph, file.workload));
    }
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    let list = io::read_edge_list(reader)?;
    let weightless = !list.has_explicit_probs;
    let mut builder = list.into_builder(0)?;
    if weightless {
        // InverseInDegree draws nothing from the RNG; the seed is irrelevant.
        assign_weights(
            &mut builder,
            WeightModel::InverseInDegree,
            &mut seeded_rng(0),
        );
    }
    Ok((builder.build()?, None))
}

/// Load a full dataset instance from `path`.
///
/// Graphs without a stored workload get the deterministic Sec. VI-A
/// default workload seeded from `effort.seed`, and a budget of 25 average
/// seed costs (the same floor the synthetic profiles use) — so the same
/// file and seed always produce the identical instance, whichever format
/// the graph came in.
pub fn load_dataset(path: &Path, effort: &Effort) -> Result<LoadedDataset, GraphError> {
    let (graph, stored) = load_graph(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string();
    instance_from_parts(name, graph, stored, effort)
}

/// Shape an already-loaded graph (plus its optional stored workload) into a
/// [`LoadedDataset`], synthesizing the deterministic default workload where
/// the file carries none — the exact policy of [`load_dataset`], exposed
/// for callers that open the file themselves (e.g. `osn-serve` keeping a
/// [`osn_graph::ShardedOscg`] handle for residency accounting).
pub fn instance_from_parts(
    name: String,
    graph: CsrGraph,
    stored: Option<binary::Workload>,
    effort: &Effort,
) -> Result<LoadedDataset, GraphError> {
    let (data, budget) = match stored {
        Some(w) => (w.data, w.budget),
        None => {
            let mut rng = seeded_rng(effort.seed ^ WORKLOAD_SALT);
            let data = standard_workload(
                &graph,
                DEFAULT_MU,
                DEFAULT_SIGMA,
                DEFAULT_LAMBDA,
                DEFAULT_KAPPA,
                &mut rng,
            )?;
            let n = graph.node_count().max(1);
            let budget = 25.0 * data.total_seed_cost() / n as f64;
            (data, budget)
        }
    };
    Ok(LoadedDataset {
        name,
        graph,
        data,
        budget,
    })
}

/// `repro convert`: re-encode `input` (text or binary, same auto-detection
/// and weight policy as [`load_graph`]) as an `.oscg` file at `output`.
/// A workload block on a binary input is preserved.
///
/// The write is atomic ([`binary::write_oscg_atomic`]): an interrupted
/// convert never leaves a truncated `.oscg` behind, and re-converting over
/// a file another process has memory-mapped replaces the directory entry
/// instead of truncating pages under the live map.
pub fn convert(input: &Path, output: &Path) -> Result<(), GraphError> {
    let (graph, workload) = load_graph(input)?;
    binary::write_oscg_atomic(
        output,
        &graph,
        workload.as_ref().map(|w| (&w.data, w.budget)),
    )
}

/// How `repro convert --shards N` / `--shard-mb M` picks shard boundaries.
#[derive(Clone, Copy, Debug)]
pub enum ShardSpec {
    /// Split into (up to) this many incident-edge-balanced shards.
    Count(usize),
    /// Cap each shard's on-disk payload at this many MiB.
    PayloadMb(u64),
}

/// [`convert`], but emitting the partitioned v2 layout. Returns the shard
/// count actually written (a balanced plan never produces empty shards, so
/// tiny graphs may get fewer than requested).
pub fn convert_sharded(input: &Path, output: &Path, spec: ShardSpec) -> Result<usize, GraphError> {
    let (graph, workload) = load_graph(input)?;
    let plan = match spec {
        ShardSpec::Count(s) => ShardPlan::balanced(graph.out_offsets(), graph.in_offsets(), s),
        ShardSpec::PayloadMb(mb) => {
            ShardPlan::by_payload_bytes(graph.out_offsets(), graph.in_offsets(), mb << 20)
        }
    };
    write_sharded_oscg_atomic(
        output,
        &graph,
        workload.as_ref().map(|w| (&w.data, w.budget)),
        &plan,
    )?;
    Ok(plan.shard_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::NodeId;
    use s3crm_tests::TempDir;

    #[test]
    fn text_without_probabilities_gets_inverse_in_degree() {
        let dir = TempDir::new("weightless");
        let path = dir.file("graph.txt");
        std::fs::write(&path, "# snap\n0 1\n2 1\n1 0\n").unwrap();
        let (g, w) = load_graph(&path).unwrap();
        assert!(w.is_none());
        // Node 1 has in-degree 2 -> both incoming edges carry 1/2.
        assert_eq!(g.edge_prob(NodeId(0), NodeId(1)), Some(0.5));
        assert_eq!(g.edge_prob(NodeId(1), NodeId(0)), Some(1.0));
    }

    #[test]
    fn text_with_probabilities_keeps_them() {
        let dir = TempDir::new("weighted");
        let path = dir.file("graph.txt");
        std::fs::write(&path, "0 1 0.3\n1 2 0\n").unwrap();
        let (g, _) = load_graph(&path).unwrap();
        assert_eq!(g.edge_prob(NodeId(0), NodeId(1)), Some(0.3));
        // Explicit zeros are kept once any line carries a probability.
        assert_eq!(g.edge_prob(NodeId(1), NodeId(2)), Some(0.0));
    }

    #[test]
    fn all_explicit_zeros_stay_dead() {
        // Every line carries an explicit 0: a deliberately dead network
        // must NOT be silently reweighted to 1/in-degree.
        let dir = TempDir::new("deadnet");
        let path = dir.file("graph.txt");
        std::fs::write(&path, "0 1 0.0\n1 2 0\n2 0 0.0\n").unwrap();
        let (g, _) = load_graph(&path).unwrap();
        for u in g.nodes() {
            for (_, p) in g.ranked_out(u) {
                assert_eq!(p, 0.0, "explicit zero was overwritten");
            }
        }
    }

    #[test]
    fn convert_then_load_matches_text_load() {
        let dir = TempDir::new("convert");
        let text = dir.file("src.txt");
        let bin = dir.file("dst.oscg");
        std::fs::write(&text, "0 1\n1 2\n2 0\n0 2\n").unwrap();
        convert(&text, &bin).unwrap();
        let (from_text, _) = load_graph(&text).unwrap();
        let (from_bin, _) = load_graph(&bin).unwrap();
        assert_eq!(from_text, from_bin);
    }

    #[test]
    fn sharded_convert_loads_identically_to_monolithic() {
        let dir = TempDir::new("convert-sharded");
        let text = dir.file("src.txt");
        let mono = dir.file("mono.oscg");
        let sharded = dir.file("sharded.oscg");
        std::fs::write(&text, "0 1\n1 2\n2 3\n3 0\n1 3\n0 2\n").unwrap();
        convert(&text, &mono).unwrap();
        let written = convert_sharded(&text, &sharded, ShardSpec::Count(2)).unwrap();
        assert_eq!(written, 2);
        let effort = Effort::micro();
        let a = load_dataset(&mono, &effort).unwrap();
        let b = load_dataset(&sharded, &effort).unwrap();
        // Same graph and instance either way; the sharded load additionally
        // carries the file's shard plan for the shard-local kernels.
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.data, b.data);
        assert_eq!(a.budget.to_bits(), b.budget.to_bits());
        assert!(a.graph.shard_plan().is_none());
        assert_eq!(
            b.graph.shard_plan().map(|p| p.shard_count()),
            Some(2),
            "v2 load must attach the plan"
        );
        // A payload cap of 1 MiB comfortably holds this whole graph.
        let one = dir.file("one.oscg");
        assert_eq!(
            convert_sharded(&text, &one, ShardSpec::PayloadMb(1)).unwrap(),
            1
        );
    }

    #[test]
    fn dataset_instance_is_deterministic_across_formats() {
        let dir = TempDir::new("determinism");
        let text = dir.file("src.txt");
        let bin = dir.file("dst.oscg");
        std::fs::write(&text, "0 1\n1 2\n2 3\n3 0\n1 3\n").unwrap();
        convert(&text, &bin).unwrap();
        let effort = Effort::micro();
        let a = load_dataset(&text, &effort).unwrap();
        let b = load_dataset(&bin, &effort).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.data, b.data, "synthesized workloads must match");
        assert_eq!(a.budget.to_bits(), b.budget.to_bits());
    }

    #[test]
    fn binary_workload_overrides_synthesis() {
        let dir = TempDir::new("stored");
        let bin = dir.file("workload.oscg");
        let mut builder = osn_graph::GraphBuilder::new(2);
        builder.add_edge(0, 1, 0.5).unwrap();
        let g = builder.build().unwrap();
        let data = NodeData::uniform(2, 9.0, 3.0, 1.0);
        let file = std::fs::File::create(&bin).unwrap();
        binary::write_oscg(&g, Some((&data, 123.0)), file).unwrap();
        let ds = load_dataset(&bin, &Effort::micro()).unwrap();
        assert_eq!(ds.data, data);
        assert_eq!(ds.budget, 123.0);
    }

    #[test]
    fn profile_instance_matches_direct_generation() {
        let effort = Effort::micro();
        let via_choke = profile_instance(DatasetProfile::Facebook, &effort);
        let direct = DatasetProfile::Facebook
            .generate(effort.profile_scale(DatasetProfile::Facebook), effort.seed)
            .unwrap();
        assert_eq!(via_choke.graph, direct.graph);
        assert_eq!(via_choke.data, direct.data);
    }
}
