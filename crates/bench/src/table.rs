//! Plain-text and CSV rendering of experiment results.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A titled table of string cells.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            let joined: Vec<String> = cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            let _ = writeln!(out, "  {}", joined.join("  "));
        };
        line(&self.headers, &widths, &mut out);
        let total = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "  {}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// CSV serialization (comma-escaped by quoting).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV next to a directory, creating it if needed.
    pub fn write_csv(&self, dir: &Path, file: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(file))?;
        f.write_all(self.to_csv().as_bytes())
    }
}

/// Compact numeric formatting: 4 significant digits, no trailing noise.
pub fn num(x: f64) -> String {
    if x.is_infinite() {
        return "inf".into();
    }
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.0}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else if a >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["alg", "rate"]);
        t.push_row(vec!["S3CA".into(), "3.10".into()]);
        t.push_row(vec!["IM-U".into(), "2.444".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("S3CA"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    fn num_formats_by_magnitude() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(3.45678), "3.457");
        assert_eq!(num(42.123), "42.1");
        assert_eq!(num(12345.6), "12346");
        assert_eq!(num(0.0001234), "1.23e-4");
        assert_eq!(num(f64::INFINITY), "inf");
    }
}
