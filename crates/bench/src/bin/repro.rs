//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p s3crm-bench --release --bin repro            # everything, quick preset
//! cargo run -p s3crm-bench --release --bin repro -- fig6    # one artifact
//! cargo run -p s3crm-bench --release --bin repro -- --full  # overnight preset
//! cargo run -p s3crm-bench --release --bin repro -- --scale 2.0 fig9
//! cargo run -p s3crm-bench --release --bin repro -- --cache .oscg-cache fig6
//! cargo run -p s3crm-bench --release --bin repro -- --data soc-Epinions1.txt data
//! cargo run -p s3crm-bench --release --bin repro -- convert edges.txt edges.oscg
//! cargo run -p s3crm-bench --release --bin repro -- convert --shards 4 edges.txt edges.oscg
//! cargo run -p s3crm-bench --release --bin repro -- sniff edges.oscg
//! cargo run -p s3crm-bench --release --bin repro -- bench shard_cascade --nodes 1000000
//! cargo run -p s3crm-bench --release --bin repro -- --estimator sketch fig9
//! cargo run -p s3crm-bench --release --bin repro -- csvdiff a.csv b.csv 0.05
//! ```
//!
//! Results print as aligned tables and are written as CSV under
//! `experiments-out/`. `--data PATH` substitutes a real dataset (SNAP text
//! or `.oscg` binary, auto-detected) for the synthetic profiles; `convert`
//! re-encodes a dataset as binary; `--cache DIR` memoizes generated
//! profiles as `.oscg` files.

use osn_gen::DatasetProfile;
use s3crm_bench::experiments::{
    ablation, dataset as data_experiment, extensions, fig10, fig6, fig7, fig8, fig9, table3, table4,
};
use s3crm_bench::{dataset, Effort, Table};
use std::path::PathBuf;

struct Args {
    effort: Effort,
    artifacts: Vec<String>,
    out_dir: PathBuf,
    data: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut effort = Effort::quick();
    let mut artifacts: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("experiments-out");
    let mut data: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => effort = Effort::full(),
            "--micro" => effort = Effort::micro(),
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                effort.graph_scale = v.parse().expect("--scale must be a number");
            }
            "--worlds" => {
                let v = it.next().expect("--worlds needs a value");
                effort.eval_worlds = v.parse().expect("--worlds must be an integer");
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                effort.seed = v.parse().expect("--seed must be an integer");
            }
            "--pool-size" => {
                let v = it.next().expect("--pool-size needs a value");
                let threads: usize = v
                    .parse()
                    .ok()
                    .filter(|&t| t >= 1)
                    .expect("--pool-size must be a positive integer");
                // Construct the shared worker pool once, up front; every
                // evaluator in every experiment folds on it. Results are
                // bit-identical at any size (the determinism contract) —
                // the flag exists for perf tuning and for CI's 2-worker
                // drift check. The pool cannot be resized once built, so a
                // repeated flag is an error rather than silently ignored.
                osn_pool::init_global(threads).expect("duplicate --pool-size: pool already built");
            }
            "--estimator" => {
                // Which backend drives S3CA's ID phase. `mc` is the exact
                // incremental engine with Monte-Carlo snapshot re-ranking
                // (the reference, bit-identical to the pre-backend
                // pipeline); `sketch` builds a reverse-reachability sketch
                // index and runs the greedy loop against its coverage
                // oracle (final objectives are re-evaluated analytically).
                let v = it.next().expect("--estimator needs mc|sketch");
                effort.estimator = match v.as_str() {
                    "mc" => s3crm_core::EstimatorBackend::Mc,
                    "sketch" => s3crm_core::EstimatorBackend::Sketch,
                    other => panic!("--estimator must be mc or sketch, got {other}"),
                };
            }
            "--world-storage" => {
                // Representation-only escape hatch: both storages hold the
                // same skip-sampled live sets and produce byte-identical
                // CSVs (CI diffs them); dense exists for memory comparisons
                // and as a fallback while the sparse path matures.
                let v = it.next().expect("--world-storage needs dense|sparse");
                // The flag is a CLI-only shim: it writes into this run's
                // `Effort`, which threads the choice explicitly through
                // every experiment (no process-global state involved).
                effort.world_storage = match v.as_str() {
                    "dense" => osn_propagation::WorldStorage::Dense,
                    "sparse" => osn_propagation::WorldStorage::Sparse,
                    other => panic!("--world-storage must be dense or sparse, got {other}"),
                };
            }
            "--cascade-kernel" => {
                // Execution-strategy escape hatch: the bit-parallel lane
                // kernel (default) and the scalar reference produce
                // bit-identical estimates (CI diffs their CSVs); scalar
                // exists as the bit-identity reference and for perf
                // comparisons.
                let v = it.next().expect("--cascade-kernel needs lane|scalar");
                // CLI-only shim, same as `--world-storage`.
                effort.cascade_kernel = match v.as_str() {
                    "lane" => osn_propagation::CascadeKernel::Lane,
                    "scalar" => osn_propagation::CascadeKernel::Scalar,
                    other => panic!("--cascade-kernel must be lane or scalar, got {other}"),
                };
            }
            "--out" => out_dir = PathBuf::from(it.next().expect("--out needs a path")),
            "--data" => data = Some(PathBuf::from(it.next().expect("--data needs a path"))),
            "--cache" => {
                dataset::set_cache_dir(PathBuf::from(it.next().expect("--cache needs a directory")))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--full|--micro] [--scale X] [--worlds N] [--seed N] \
                     [--pool-size N] [--world-storage dense|sparse] \
                     [--cascade-kernel lane|scalar] \
                     [--estimator mc|sketch] [--out DIR] \
                     [--cache DIR] [--data PATH] \
                     [fig6 fig7 fig8 fig9 fig10 table3 table4 ablation extensions data]...\n\
                     \x20      repro convert [--shards N | --shard-mb M] INPUT OUTPUT\n\
                     \x20                                   # re-encode a dataset as .oscg (v2 when sharded)\n\
                     \x20      repro sniff FILE             # print an .oscg header / shard table\n\
                     \x20      repro bench shard_cascade    # out-of-core trajectory benchmark\n\
                     \x20      repro csvdiff A B TOL        # compare two CSVs (relative tolerance)"
                );
                std::process::exit(0);
            }
            other => {
                artifacts.push(other.to_string());
                // Subcommands own the rest of the command line: their flags
                // (e.g. `bench … --seed`, `convert … --shards`) must not be
                // eaten by the global parser above.
                if artifacts.len() == 1
                    && matches!(other, "convert" | "sniff" | "bench" | "csvdiff")
                {
                    artifacts.extend(it.by_ref());
                    break;
                }
            }
        }
    }
    if artifacts.is_empty() {
        // With a dataset on the command line the natural default is the
        // dataset sweep; otherwise the full paper reproduction.
        artifacts = if data.is_some() {
            vec!["data".to_string()]
        } else {
            [
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "table3",
                "table4",
                "ablation",
                "extensions",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect()
        };
    }
    Args {
        effort,
        artifacts,
        out_dir,
        data,
    }
}

/// Do two numeric CSV cells agree within relative tolerance `tol`
/// (absolute for magnitudes below 1)? Non-finite values never hide behind
/// the tolerance: `NaN` matches nothing (a NaN objective is exactly the
/// corruption csvdiff exists to catch, and every comparison against NaN is
/// false — the old `> tol*scale` test silently passed it), and `±inf`
/// matches only the same-signed `inf` (`inf - finite` is `inf`, but so is
/// `tol * inf`, so the old test passed that too).
fn numeric_cells_match(x: f64, y: f64, tol: f64) -> bool {
    if x.is_nan() || y.is_nan() {
        return false;
    }
    if x.is_infinite() || y.is_infinite() {
        return x == y;
    }
    let scale = x.abs().max(y.abs()).max(1.0);
    (x - y).abs() <= tol * scale
}

/// Most mismatch lines csvdiff prints before suppressing the rest: a fully
/// divergent CSV must not flood a CI log, but the summary line always
/// reports the true total.
const CSVDIFF_MAX_REPORTS: usize = 40;

/// Compare two CSVs line-wise and return one message per mismatch. Rows are
/// compared cell by cell (numeric cells within `tol`, see
/// [`numeric_cells_match`]; others exactly). When the row counts differ,
/// every unpaired trailing row of the longer file is reported individually —
/// a zip that silently drops the tail would hide *what* diverged.
fn diff_csv(a: &[String], b: &[String], tol: f64) -> Vec<String> {
    let mut msgs = Vec::new();
    if a.len() != b.len() {
        msgs.push(format!("row count {} vs {}", a.len(), b.len()));
    }
    for (row, (la, lb)) in a.iter().zip(b).enumerate() {
        let (ca, cb): (Vec<&str>, Vec<&str>) = (la.split(',').collect(), lb.split(',').collect());
        if ca.len() != cb.len() {
            msgs.push(format!(
                "row {row}: column count {} vs {}",
                ca.len(),
                cb.len()
            ));
            continue;
        }
        for (col, (va, vb)) in ca.iter().zip(&cb).enumerate() {
            match (va.trim().parse::<f64>(), vb.trim().parse::<f64>()) {
                (Ok(x), Ok(y)) => {
                    if !numeric_cells_match(x, y, tol) {
                        msgs.push(format!("row {row} col {col}: {x} vs {y} (tol {tol})"));
                    }
                }
                _ => {
                    if va.trim() != vb.trim() {
                        msgs.push(format!("row {row} col {col}: {va:?} vs {vb:?}"));
                    }
                }
            }
        }
    }
    let common = a.len().min(b.len());
    let (longer, which) = if a.len() > b.len() {
        (a, "A")
    } else {
        (b, "B")
    };
    for (row, line) in longer.iter().enumerate().skip(common) {
        msgs.push(format!("row {row} only in {which}: {line:?}"));
    }
    msgs
}

/// `repro csvdiff A B TOL` — compare two experiment CSVs cell by cell:
/// numeric cells must agree within relative tolerance `TOL` (absolute for
/// magnitudes below 1, never for non-finite values), non-numeric cells
/// exactly; unpaired trailing rows of the longer file each count as a
/// mismatch. Exit 0 on match, 1 on divergence (mismatches reported, capped
/// at [`CSVDIFF_MAX_REPORTS`] lines), 2 on usage/IO errors. CI uses this to
/// bound the sketch-vs-MC objective gap and to byte-check the world-storage
/// representations and cascade kernels.
fn run_csvdiff(paths: &[String]) -> ! {
    let [a_path, b_path, tol] = paths else {
        eprintln!("usage: repro csvdiff A B TOL");
        std::process::exit(2);
    };
    let tol: f64 = tol.parse().unwrap_or_else(|_| {
        eprintln!("csvdiff: TOL must be a number, got {tol:?}");
        std::process::exit(2);
    });
    let read = |p: &String| -> Vec<String> {
        match std::fs::read_to_string(p) {
            Ok(s) => s.lines().map(str::to_string).collect(),
            Err(e) => {
                eprintln!("csvdiff: cannot read {p}: {e}");
                std::process::exit(2);
            }
        }
    };
    let (a, b) = (read(a_path), read(b_path));
    let msgs = diff_csv(&a, &b, tol);
    if msgs.is_empty() {
        println!("csvdiff: {a_path} and {b_path} agree within {tol}");
        std::process::exit(0);
    }
    for msg in msgs.iter().take(CSVDIFF_MAX_REPORTS) {
        eprintln!("csvdiff: {msg}");
    }
    if msgs.len() > CSVDIFF_MAX_REPORTS {
        eprintln!(
            "csvdiff: ... {} further mismatches suppressed",
            msgs.len() - CSVDIFF_MAX_REPORTS
        );
    }
    eprintln!("csvdiff: {} mismatches", msgs.len());
    std::process::exit(1);
}

/// `repro convert [--shards N | --shard-mb M] INPUT OUTPUT` — runs before
/// the experiment loop. Without a shard flag the output is the monolithic
/// v1 layout; with one it is the partitioned v2 layout.
fn run_convert(args: &[String]) -> ! {
    let usage = || -> ! {
        eprintln!("usage: repro convert [--shards N | --shard-mb M] INPUT OUTPUT");
        std::process::exit(2);
    };
    let mut spec: Option<dataset::ShardSpec> = None;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                let v = it.next().unwrap_or_else(|| usage());
                let count = v.parse().ok().filter(|&c| c >= 1).unwrap_or_else(|| {
                    eprintln!("convert: --shards must be a positive integer, got {v:?}");
                    std::process::exit(2);
                });
                spec = Some(dataset::ShardSpec::Count(count));
            }
            "--shard-mb" => {
                let v = it.next().unwrap_or_else(|| usage());
                let mb = v.parse().ok().filter(|&m| m >= 1).unwrap_or_else(|| {
                    eprintln!("convert: --shard-mb must be a positive integer, got {v:?}");
                    std::process::exit(2);
                });
                spec = Some(dataset::ShardSpec::PayloadMb(mb));
            }
            _ => paths.push(arg),
        }
    }
    let [input, output] = paths[..] else { usage() };
    let (input_p, output_p) = (std::path::Path::new(input), std::path::Path::new(output));
    let result = match spec {
        None => dataset::convert(input_p, output_p).map(|()| None),
        Some(spec) => dataset::convert_sharded(input_p, output_p, spec).map(Some),
    };
    match result {
        Ok(shards) => {
            let size = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
            match shards {
                None => println!("converted {input} -> {output} ({size} bytes, monolithic v1)"),
                Some(s) => {
                    println!("converted {input} -> {output} ({size} bytes, {s} shards, v2)")
                }
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("convert failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro sniff FILE` — print an `.oscg` file's header, and for partitioned
/// (v2) files the full shard table. Opening a v2 file validates every
/// shard checksum, so a clean sniff doubles as an integrity check.
fn run_sniff(paths: &[String]) -> ! {
    let [path] = paths else {
        eprintln!("usage: repro sniff FILE");
        std::process::exit(2);
    };
    let p = std::path::Path::new(path);
    let version = match osn_graph::binary::sniff_oscg_version(p) {
        Ok(Some(v)) => v,
        Ok(None) => {
            eprintln!("sniff: {path} is not an .oscg file");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("sniff: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let size = std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    match version {
        2 => match osn_graph::ShardedOscg::open(p) {
            Ok(file) => {
                println!(
                    "{path}: .oscg v2 (partitioned), {} nodes, {} edges, {} shards, \
                     {size} bytes, workload {}",
                    file.node_count(),
                    file.edge_count(),
                    file.shard_count(),
                    if file.workload().is_some() {
                        "present"
                    } else {
                        "absent"
                    },
                );
                println!(
                    "{:>5}  {:>22}  {:>11}  {:>11}  {:>12}  {:>16}",
                    "shard", "nodes", "fwd_edges", "rev_edges", "bytes", "checksum"
                );
                for (s, info) in file.table().iter().enumerate() {
                    println!(
                        "{s:>5}  [{:>9}, {:>9})  {:>11}  {:>11}  {:>12}  {:016x}",
                        info.node_start,
                        info.node_end,
                        info.fwd_edges,
                        info.rev_edges,
                        info.byte_len,
                        info.checksum,
                    );
                }
                println!("all shard checksums verified");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("sniff: {path} is a v2 .oscg but failed validation: {e}");
                std::process::exit(1);
            }
        },
        1 => match osn_graph::binary::load_oscg(p) {
            Ok(file) => {
                println!(
                    "{path}: .oscg v1 (monolithic), {} nodes, {} edges, {size} bytes, \
                     workload {}",
                    file.graph.node_count(),
                    file.graph.edge_count(),
                    if file.workload.is_some() {
                        "present"
                    } else {
                        "absent"
                    },
                );
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("sniff: {path} is a v1 .oscg but failed validation: {e}");
                std::process::exit(1);
            }
        },
        v => {
            eprintln!("sniff: {path} declares unsupported .oscg version {v}");
            std::process::exit(1);
        }
    }
}

/// `repro bench shard_cascade [...]` — the out-of-core trajectory
/// benchmark: stream-generate a sharded graph, open it under a residency
/// budget, run the degree-greedy budgeted ID pass on the shard-local
/// kernel, and append the measured point to the trajectory file.
fn run_bench(args: &[String]) -> ! {
    let usage = || -> ! {
        eprintln!(
            "usage: repro bench shard_cascade [--nodes N] [--edges-per-node M] \
             [--shards S] [--resident-mb MB] [--worlds W] [--coupons K] \
             [--seeds-cap C] [--seed SEED] [--file PATH] [--keep] \
             [--json PATH|none] [--max-rss-mb MB]"
        );
        std::process::exit(2);
    };
    let Some((name, rest)) = args.split_first() else {
        usage()
    };
    if name != "shard_cascade" {
        eprintln!("bench: unknown benchmark {name:?} (only shard_cascade exists)");
        usage();
    }
    let mut cfg = s3crm_bench::shard_bench::ShardBenchConfig::default();
    let mut json: Option<PathBuf> = Some(PathBuf::from("BENCH_TRAJECTORY.json"));
    let mut max_rss_mb: Option<u64> = None;
    let mut it = rest.iter();
    let parse = |flag: &str, v: Option<&String>| -> u64 {
        v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("bench: {flag} needs a positive integer");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--nodes" => cfg.nodes = parse("--nodes", it.next()) as usize,
            "--edges-per-node" => {
                cfg.edges_per_node = parse("--edges-per-node", it.next()) as usize
            }
            "--shards" => cfg.shards = parse("--shards", it.next()) as usize,
            "--resident-mb" => cfg.resident_mb = parse("--resident-mb", it.next()) as usize,
            "--worlds" => cfg.worlds = parse("--worlds", it.next()) as usize,
            "--coupons" => cfg.coupons_per_node = parse("--coupons", it.next()) as u32,
            "--seeds-cap" => cfg.seeds_cap = parse("--seeds-cap", it.next()) as usize,
            "--seed" => cfg.seed = parse("--seed", it.next()),
            "--file" => {
                cfg.file = PathBuf::from(it.next().unwrap_or_else(|| usage()));
            }
            "--keep" => cfg.keep = true,
            "--json" => {
                let v = it.next().unwrap_or_else(|| usage());
                json = (v != "none").then(|| PathBuf::from(v));
            }
            "--max-rss-mb" => max_rss_mb = Some(parse("--max-rss-mb", it.next())),
            _ => usage(),
        }
    }
    println!(
        "# bench shard_cascade: {} nodes x {} edges/node, {} shards, \
         {} MiB residency, {} worlds, seed {}",
        cfg.nodes, cfg.edges_per_node, cfg.shards, cfg.resident_mb, cfg.worlds, cfg.seed
    );
    let point = match s3crm_bench::shard_bench::run(&cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bench shard_cascade failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "generated {} directed edges into {} bytes ({} shards) in {:.1}s \
         (generator peak RSS {:.1} MiB)",
        point.directed_edges,
        point.file_bytes,
        point.shards,
        point.gen_secs,
        point.gen_peak_rss_bytes as f64 / (1 << 20) as f64,
    );
    println!(
        "opened + validated in {:.1}s; ID pass ({} seeds, {} funded nodes, \
         {} worlds) in {:.1}s: mean benefit {:.3}, mean activated {:.1}",
        point.open_secs,
        point.seeds,
        point.funded_nodes,
        point.worlds,
        point.id_secs,
        point.mean_benefit,
        point.mean_activated,
    );
    println!(
        "peak RSS {:.1} MiB = {:.1}% of the {:.1} MiB file \
         ({} shard loads, {} evictions, max {} resident)",
        point.peak_rss_bytes as f64 / (1 << 20) as f64,
        point.rss_to_file_ratio * 100.0,
        point.file_bytes as f64 / (1 << 20) as f64,
        point.shard_loads,
        point.shard_evictions,
        point.max_resident_shards,
    );
    if let Some(path) = json {
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        match s3crm_bench::shard_bench::append_trajectory_point(&path, &point.to_json(unix_secs)) {
            Ok(()) => println!("trajectory point appended to {}", path.display()),
            Err(e) => {
                eprintln!("could not append to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(cap) = max_rss_mb {
        if point.peak_rss_bytes > cap * (1 << 20) {
            eprintln!(
                "peak RSS {} bytes exceeds the --max-rss-mb {cap} bound",
                point.peak_rss_bytes
            );
            std::process::exit(1);
        }
        println!("peak RSS within the {cap} MiB bound");
    }
    std::process::exit(0);
}

fn emit(table: Table, out_dir: &std::path::Path, name: &str) {
    table.print();
    if let Err(e) = table.write_csv(out_dir, &format!("{name}.csv")) {
        eprintln!("warning: could not write {name}.csv: {e}");
    }
}

fn main() {
    let args = parse_args();
    if args.artifacts.first().map(String::as_str) == Some("convert") {
        run_convert(&args.artifacts[1..]);
    }
    if args.artifacts.first().map(String::as_str) == Some("sniff") {
        run_sniff(&args.artifacts[1..]);
    }
    if args.artifacts.first().map(String::as_str) == Some("bench") {
        run_bench(&args.artifacts[1..]);
    }
    if args.artifacts.first().map(String::as_str) == Some("csvdiff") {
        run_csvdiff(&args.artifacts[1..]);
    }
    let e = &args.effort;
    println!(
        "# S3CRM reproduction harness — scale x{}, {} eval worlds, seed {}, {} pool workers, {} world storage, {} cascade kernel, {} estimator",
        e.graph_scale,
        e.eval_worlds,
        e.seed,
        osn_pool::global().num_threads(),
        match e.world_storage {
            osn_propagation::WorldStorage::Sparse => "sparse",
            osn_propagation::WorldStorage::Dense => "dense",
        },
        match e.cascade_kernel {
            osn_propagation::CascadeKernel::Lane => "lane",
            osn_propagation::CascadeKernel::Scalar => "scalar",
        },
        match e.estimator {
            s3crm_core::EstimatorBackend::Mc => "mc",
            s3crm_core::EstimatorBackend::Sketch => "sketch",
        }
    );
    println!("# CSV output: {}\n", args.out_dir.display());

    let mut unknown = false;
    for artifact in &args.artifacts {
        let t0 = std::time::Instant::now();
        match artifact.as_str() {
            "fig6" => {
                // Paper plots (a)(b) on Douban and (c) Douban / (d) Facebook.
                let (rate, benefit) = fig6::rate_and_benefit_vs_budget(DatasetProfile::Douban, e);
                emit(rate, &args.out_dir, "fig6a_rate_vs_budget_douban");
                emit(benefit, &args.out_dir, "fig6b_benefit_vs_budget_douban");
                emit(
                    fig6::rate_vs_lambda(DatasetProfile::Douban, e),
                    &args.out_dir,
                    "fig6c_rate_vs_lambda_douban",
                );
                emit(
                    fig6::rate_vs_lambda(DatasetProfile::Facebook, e),
                    &args.out_dir,
                    "fig6d_rate_vs_lambda_facebook",
                );
                emit(
                    fig6::running_time(DatasetProfile::Douban, 2.0, e),
                    &args.out_dir,
                    "fig6e_running_time_2x",
                );
                emit(
                    fig6::running_time(DatasetProfile::Douban, 3.0, e),
                    &args.out_dir,
                    "fig6f_running_time_3x",
                );
            }
            "fig7" => {
                emit(
                    fig7::seed_sc_vs_budget(DatasetProfile::Facebook, e),
                    &args.out_dir,
                    "fig7a_seedsc_vs_budget_facebook",
                );
                emit(
                    fig7::seed_sc_vs_budget(DatasetProfile::Epinions, e),
                    &args.out_dir,
                    "fig7b_seedsc_vs_budget_epinions",
                );
                emit(
                    fig7::seed_sc_vs_lambda(DatasetProfile::Facebook, e),
                    &args.out_dir,
                    "fig7c_seedsc_vs_lambda_facebook",
                );
                emit(
                    fig7::seed_sc_vs_lambda(DatasetProfile::GooglePlus, e),
                    &args.out_dir,
                    "fig7d_seedsc_vs_lambda_gplus",
                );
                emit(
                    fig7::seed_sc_vs_kappa(DatasetProfile::Facebook, e),
                    &args.out_dir,
                    "fig7e_seedsc_vs_kappa_facebook",
                );
                emit(
                    fig7::seed_sc_vs_kappa(DatasetProfile::Douban, e),
                    &args.out_dir,
                    "fig7f_seedsc_vs_kappa_douban",
                );
            }
            "fig8" => {
                for policy in fig8::policies() {
                    let (rate, ssc) = fig8::case_study(policy, e);
                    let tag = policy.name.to_lowercase().replace('.', "");
                    emit(rate, &args.out_dir, &format!("fig8_rate_{tag}"));
                    emit(ssc, &args.out_dir, &format!("fig8_seedsc_{tag}"));
                }
            }
            "fig9" => {
                let sizes = [1000, 2000, 4000, 8000];
                emit(
                    fig9::vs_network_size(&sizes, 500.0, e),
                    &args.out_dir,
                    "fig9ab_vs_network_size",
                );
                emit(
                    fig9::vs_budget(4000, &[200.0, 400.0, 800.0, 1600.0], e),
                    &args.out_dir,
                    "fig9cd_vs_budget",
                );
            }
            "fig10" => {
                let margins = [20.0, 40.0, 60.0, 80.0];
                emit(
                    fig10::average_vs_opt(&margins, 3, e),
                    &args.out_dir,
                    "fig10a_average_vs_opt",
                );
                emit(
                    fig10::all_results_vs_opt(&margins, 5, e),
                    &args.out_dir,
                    "fig10b_all_vs_opt",
                );
            }
            "table3" => {
                emit(
                    table3::farthest_hops(&DatasetProfile::ALL, e),
                    &args.out_dir,
                    "table3_hops",
                );
            }
            "table4" => {
                emit(
                    table4::running_time(&DatasetProfile::ALL, e),
                    &args.out_dir,
                    "table4_runtime",
                );
            }
            "data" => {
                let path = args.data.as_deref().unwrap_or_else(|| {
                    eprintln!("the data artifact needs --data PATH");
                    std::process::exit(2);
                });
                let ds = match dataset::load_dataset(path, e) {
                    Ok(ds) => ds,
                    Err(err) => {
                        eprintln!("could not load {}: {err}", path.display());
                        std::process::exit(1);
                    }
                };
                println!(
                    "# dataset {}: {} nodes, {} edges, default Binv {:.1}{}",
                    ds.name,
                    ds.graph.node_count(),
                    ds.graph.edge_count(),
                    ds.budget,
                    if ds.graph.is_mapped() {
                        " (memory-mapped)"
                    } else {
                        ""
                    }
                );
                let (rate, benefit) = data_experiment::budget_sweep(&ds, e);
                emit(rate, &args.out_dir, "data_rate_vs_budget");
                emit(benefit, &args.out_dir, "data_benefit_vs_budget");
            }
            "extensions" => {
                emit(
                    extensions::ris_vs_celf(DatasetProfile::Facebook, e),
                    &args.out_dir,
                    "extension_ris_vs_celf",
                );
                emit(
                    extensions::lt_vs_coupon_ic(DatasetProfile::Facebook, e),
                    &args.out_dir,
                    "extension_lt_vs_coupon_ic",
                );
                for cell in extensions::scenario_sweep(e) {
                    let name = cell.name.clone();
                    emit(cell.table, &args.out_dir, &name);
                }
            }
            "ablation" => {
                emit(
                    ablation::phase_ablation(DatasetProfile::Facebook, e),
                    &args.out_dir,
                    "ablation_phases",
                );
                emit(
                    ablation::evaluator_ablation(DatasetProfile::Facebook, e),
                    &args.out_dir,
                    "ablation_evaluator",
                );
            }
            other => {
                eprintln!("unknown artifact {other:?}; see --help");
                unknown = true;
                continue;
            }
        }
        eprintln!("[{artifact} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
    if unknown {
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::{diff_csv, numeric_cells_match};

    fn lines(rows: &[&str]) -> Vec<String> {
        rows.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_csvs_produce_no_messages() {
        let a = lines(&["h1,h2", "1.0,x", "2.0,y"]);
        assert!(diff_csv(&a, &a, 0.0).is_empty());
    }

    #[test]
    fn trailing_rows_of_the_longer_file_are_each_reported() {
        let a = lines(&["h", "1.0"]);
        let b = lines(&["h", "1.0", "2.0", "3.0"]);
        let msgs = diff_csv(&a, &b, 0.0);
        // One row-count message plus one message per unpaired trailing row.
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("row count 2 vs 4"), "{msgs:?}");
        assert!(msgs[1].contains("row 2 only in B"), "{msgs:?}");
        assert!(msgs[2].contains("row 3 only in B"), "{msgs:?}");
        // Symmetric when A is the longer file.
        let msgs = diff_csv(&b, &a, 0.0);
        assert!(msgs.iter().any(|m| m.contains("row 3 only in A")));
    }

    #[test]
    fn cell_mismatches_in_the_common_prefix_still_reported_alongside_tail() {
        let a = lines(&["h", "1.0,a", "2.0,b"]);
        let b = lines(&["h", "9.0,a", "2.0,b", "3.0,c"]);
        let msgs = diff_csv(&a, &b, 0.0);
        assert!(msgs.iter().any(|m| m.contains("row 1 col 0")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("row 3 only in B")),
            "{msgs:?}"
        );
    }

    #[test]
    fn column_count_mismatch_short_circuits_the_row() {
        let a = lines(&["1,2,3"]);
        let b = lines(&["1,2"]);
        let msgs = diff_csv(&a, &b, 0.0);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("column count 3 vs 2"), "{msgs:?}");
    }

    #[test]
    fn tolerance_applies_to_numeric_cells_only() {
        let a = lines(&["1.00,abc"]);
        let b = lines(&["1.004,abd"]);
        let msgs = diff_csv(&a, &b, 0.005);
        // The numeric cell is within tolerance; the text cell differs.
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("col 1"), "{msgs:?}");
    }

    #[test]
    fn finite_cells_use_relative_tolerance() {
        assert!(numeric_cells_match(100.0, 100.4, 0.005));
        assert!(!numeric_cells_match(100.0, 101.0, 0.005));
        // Sub-unit magnitudes fall back to absolute tolerance.
        assert!(numeric_cells_match(0.001, 0.0015, 0.001));
        assert!(numeric_cells_match(0.0, 0.0, 0.0));
        assert!(numeric_cells_match(-5.0, -5.0, 0.0));
    }

    #[test]
    fn nan_never_matches() {
        assert!(!numeric_cells_match(f64::NAN, f64::NAN, 1.0));
        assert!(!numeric_cells_match(f64::NAN, 2.0, 1.0));
        assert!(!numeric_cells_match(2.0, f64::NAN, 1.0));
        assert!(!numeric_cells_match(f64::NAN, f64::INFINITY, 1.0));
    }

    #[test]
    fn infinities_match_only_same_signed_infinity() {
        assert!(numeric_cells_match(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(numeric_cells_match(
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
            0.0
        ));
        assert!(!numeric_cells_match(f64::INFINITY, f64::NEG_INFINITY, 1.0));
        assert!(!numeric_cells_match(f64::INFINITY, 1e300, 1.0));
        assert!(!numeric_cells_match(-1e300, f64::NEG_INFINITY, 1.0));
    }
}
