//! Algorithm dispatch shared by every experiment, plus the scenario sweep
//! grid (budget × strategy × weight-model cross products).

use crate::effort::Effort;
use crate::table::{num, Table};
use osn_gen::attrs::standard_workload;
use osn_gen::powerlaw_cluster::powerlaw_cluster;
use osn_gen::seeded_rng;
use osn_gen::weights::{assign_weights, WeightModel};
use osn_graph::{CsrGraph, NodeData};
use osn_propagation::RedemptionReport;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use s3crm_baselines::im::{im_with_strategy, ImConfig};
use s3crm_baselines::im_s::im_s;
use s3crm_baselines::pm::{pm_with_strategy, PmConfig};
use s3crm_baselines::random_seeds::random_deployment;
use s3crm_baselines::strategy::CouponStrategy;
use s3crm_core::{s3ca, Deployment, Telemetry};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Every algorithm the harness can run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's contribution (all three phases).
    S3ca,
    /// Ablation: ID phase only.
    S3caIdOnly,
    /// Influence maximization + unlimited coupon strategy.
    ImU,
    /// Influence maximization + limited (Dropbox, k = 32) strategy.
    ImL,
    /// Profit maximization + unlimited strategy.
    PmU,
    /// Profit maximization + limited strategy.
    PmL,
    /// The two-stage shortest-path heuristic.
    ImS,
    /// Random feasible deployment (sanity floor; not in the paper).
    Random,
}

impl Algorithm {
    /// The baseline set the paper's figures compare (Fig. 6 ordering).
    pub const PAPER_SET: [Algorithm; 6] = [
        Algorithm::ImU,
        Algorithm::ImL,
        Algorithm::PmU,
        Algorithm::PmL,
        Algorithm::ImS,
        Algorithm::S3ca,
    ];

    /// The five algorithms of Table III.
    pub const TABLE3_SET: [Algorithm; 5] = [
        Algorithm::ImU,
        Algorithm::ImL,
        Algorithm::PmU,
        Algorithm::PmL,
        Algorithm::S3ca,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::S3ca => "S3CA",
            Algorithm::S3caIdOnly => "S3CA-ID",
            Algorithm::ImU => "IM-U",
            Algorithm::ImL => "IM-L",
            Algorithm::PmU => "PM-U",
            Algorithm::PmL => "PM-L",
            Algorithm::ImS => "IM-S",
            Algorithm::Random => "Random",
        }
    }

    /// The limited-strategy coupon cap used when this algorithm needs one.
    /// Overridable per experiment (the Fig. 8 case study uses the Airbnb /
    /// Booking.com allocations instead of Dropbox's 32).
    pub fn default_limited_cap() -> u32 {
        32
    }
}

/// One algorithm execution: deployment, wall time, optional telemetry.
#[derive(Clone, Debug)]
pub struct AlgoRun {
    pub algorithm: Algorithm,
    pub deployment: Deployment,
    pub wall: Duration,
    /// Populated for S3CA variants.
    pub telemetry: Option<Telemetry>,
}

/// Execute `algorithm` on the instance with the given limited-strategy cap.
pub fn run_algorithm(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    algorithm: Algorithm,
    limited_cap: u32,
    effort: &Effort,
) -> AlgoRun {
    let im_cfg = ImConfig {
        worlds: effort.im_worlds,
        rng_seed: effort.seed ^ 0xD1CE,
        world_storage: effort.world_storage,
        cascade_kernel: effort.cascade_kernel,
        ..ImConfig::default()
    };
    let pm_cfg = PmConfig::default();
    let start = Instant::now();
    let (deployment, telemetry) = match algorithm {
        Algorithm::S3ca => {
            let r = s3ca(graph, data, binv, &effort.s3ca_config());
            (r.deployment, Some(r.telemetry))
        }
        Algorithm::S3caIdOnly => {
            let r = s3ca(graph, data, binv, &effort.s3ca_id_only());
            (r.deployment, Some(r.telemetry))
        }
        Algorithm::ImU => (
            im_with_strategy(graph, data, binv, CouponStrategy::Unlimited, &im_cfg),
            None,
        ),
        Algorithm::ImL => (
            im_with_strategy(
                graph,
                data,
                binv,
                CouponStrategy::Limited(limited_cap),
                &im_cfg,
            ),
            None,
        ),
        Algorithm::PmU => (
            pm_with_strategy(graph, data, binv, CouponStrategy::Unlimited, &pm_cfg),
            None,
        ),
        Algorithm::PmL => (
            pm_with_strategy(
                graph,
                data,
                binv,
                CouponStrategy::Limited(limited_cap),
                &pm_cfg,
            ),
            None,
        ),
        Algorithm::ImS => (im_s(graph, data, binv, &im_cfg), None),
        Algorithm::Random => {
            let mut rng = SmallRng::seed_from_u64(effort.seed ^ 0xA11CE);
            (
                random_deployment(graph, data, binv, CouponStrategy::Unlimited, &mut rng),
                None,
            )
        }
    };
    AlgoRun {
        algorithm,
        deployment,
        wall: start.elapsed(),
        telemetry,
    }
}

/// The scenario-sweep grid: every `(budget multiplier, algorithm,
/// weight model)` combination becomes one cell with its own CSV (the
/// ROADMAP's "scenario sweeps" open item). Cells share one synthetic
/// instance per weight model and one evaluation world cache per instance,
/// so cross-cell comparisons stay tight.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    /// Multipliers on the instance's base budget.
    pub budget_multipliers: Vec<f64>,
    /// Algorithms (the "strategy" axis — each pairs a selector with a
    /// coupon strategy).
    pub algorithms: Vec<Algorithm>,
    /// Influence-probability models.
    pub weight_models: Vec<WeightModel>,
}

impl SweepGrid {
    /// The default extension grid: 3 budgets × 3 strategies × the paper's
    /// three weight models — 27 cells, small enough for CI's smoke run.
    pub fn extension_default() -> SweepGrid {
        SweepGrid {
            budget_multipliers: vec![0.5, 1.0, 2.0],
            algorithms: vec![Algorithm::S3ca, Algorithm::ImU, Algorithm::PmL],
            weight_models: vec![
                WeightModel::InverseInDegree,
                WeightModel::Uniform(0.1),
                WeightModel::trivalency_default(),
            ],
        }
    }
}

/// Stable file-name label for a weight model.
pub fn weight_model_label(model: WeightModel) -> &'static str {
    match model {
        WeightModel::InverseInDegree => "invdeg",
        WeightModel::Uniform(_) => "uniform",
        WeightModel::Trivalency(_) => "trivalency",
    }
}

/// One evaluated sweep cell: the CSV name stem and its single-row table.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// File-name stem, e.g. `sweep_invdeg_s3ca_b1` (budget multipliers
    /// render via `f64`'s `Display`, so `1.0` prints as `1`).
    pub name: String,
    pub table: Table,
}

/// Build one synthetic sweep instance under the given weight model (the
/// Fig. 9 power-law-cluster topology with the Sec. VI-A workload).
pub fn sweep_instance(n: usize, model: WeightModel, seed: u64) -> (CsrGraph, NodeData, f64) {
    let mut rng = seeded_rng(seed);
    let topo = powerlaw_cluster(n, 8, 0.6, &mut rng);
    let mut builder = topo.into_directed(1.0, &mut rng).expect("conversion");
    assign_weights(&mut builder, model, &mut rng);
    let graph = builder.build().expect("build");
    let data = standard_workload(&graph, 10.0, 2.0, 1.0, 10.0, &mut rng).expect("workload");
    // Same calibration as the dataset profiles: ~25 average seed costs, so
    // even the baselines that favor expensive high-degree seeds can afford
    // a deployment in every cell at any sweep scale.
    let base_budget = 25.0 * data.total_seed_cost() / n as f64;
    (graph, data, base_budget)
}

/// Run the cross-product sweep: one cell per `(weight model, algorithm,
/// budget multiplier)`, each a one-row table of Monte-Carlo metrics.
pub fn run_sweep(n: usize, grid: &SweepGrid, effort: &Effort) -> Vec<SweepCell> {
    let mut cells: Vec<SweepCell> = Vec::new();
    // `weight_model_label` collapses a variant's parameters, so a grid
    // with e.g. two Uniform(p) entries would collide on file names and one
    // CSV would silently overwrite the other; disambiguate repeats.
    let unique_name = |cells: &[SweepCell], base: String| -> String {
        let mut name = base.clone();
        let mut suffix = 2usize;
        while cells.iter().any(|c| c.name == name) {
            name = format!("{base}_{suffix}");
            suffix += 1;
        }
        name
    };
    for &model in &grid.weight_models {
        let (graph, data, base_budget) = sweep_instance(n, model, effort.seed);
        let cache = effort.sample_worlds(&graph, effort.eval_worlds, effort.seed ^ 0x5EE9);
        for &algo in &grid.algorithms {
            for &mult in &grid.budget_multipliers {
                let binv = base_budget * mult;
                let run = run_algorithm(&graph, &data, binv, algo, 32, effort);
                let report = RedemptionReport::compute_with(
                    &graph,
                    &data,
                    &run.deployment.seeds,
                    &run.deployment.coupons,
                    &cache,
                    effort.cascade_kernel,
                );
                let mut table = Table::new(
                    format!(
                        "Sweep cell: {} on {} weights, Binv = {}",
                        algo.label(),
                        weight_model_label(model),
                        num(binv)
                    ),
                    &[
                        "weights",
                        "algorithm",
                        "Binv",
                        "redemption_rate",
                        "benefit",
                        "total_cost",
                        "seeds",
                        "coupons",
                        "wall_ms",
                    ],
                );
                table.push_row(vec![
                    weight_model_label(model).into(),
                    algo.label().into(),
                    num(binv),
                    num(report.redemption_rate),
                    num(report.expected_benefit),
                    num(report.total_cost),
                    run.deployment.seeds.len().to_string(),
                    run.deployment.total_coupons().to_string(),
                    num(run.wall.as_secs_f64() * 1e3),
                ]);
                let name = unique_name(
                    &cells,
                    format!(
                        "sweep_{}_{}_b{mult}",
                        weight_model_label(model),
                        algo.label().to_lowercase().replace('-', ""),
                    ),
                );
                cells.push(SweepCell { name, table });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_gen::DatasetProfile;

    #[test]
    fn sweep_covers_the_cross_product() {
        let grid = SweepGrid {
            budget_multipliers: vec![0.5, 1.0],
            algorithms: vec![Algorithm::S3ca, Algorithm::ImU],
            weight_models: vec![WeightModel::InverseInDegree, WeightModel::Uniform(0.1)],
        };
        let effort = Effort::micro();
        let cells = run_sweep(120, &grid, &effort);
        assert_eq!(cells.len(), 8, "2 budgets × 2 algorithms × 2 models");
        // Every cell name is unique and every table has exactly one row.
        let mut names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "cell names collide");
        for cell in &cells {
            assert_eq!(cell.table.rows.len(), 1);
            assert_eq!(cell.table.rows[0].len(), cell.table.headers.len());
        }
    }

    #[test]
    fn duplicate_weight_model_variants_get_distinct_cell_names() {
        let grid = SweepGrid {
            budget_multipliers: vec![1.0],
            algorithms: vec![Algorithm::ImU],
            weight_models: vec![WeightModel::Uniform(0.05), WeightModel::Uniform(0.2)],
        };
        let cells = run_sweep(80, &grid, &Effort::micro());
        assert_eq!(cells.len(), 2);
        assert_ne!(cells[0].name, cells[1].name, "colliding CSV names");
        assert_eq!(cells[1].name, format!("{}_2", cells[0].name));
    }

    #[test]
    fn weight_model_labels_are_stable() {
        assert_eq!(weight_model_label(WeightModel::InverseInDegree), "invdeg");
        assert_eq!(weight_model_label(WeightModel::Uniform(0.3)), "uniform");
        assert_eq!(
            weight_model_label(WeightModel::trivalency_default()),
            "trivalency"
        );
    }

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<&str> = Algorithm::PAPER_SET.iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["IM-U", "IM-L", "PM-U", "PM-L", "IM-S", "S3CA"]);
    }

    #[test]
    fn every_algorithm_runs_and_respects_budget() {
        let inst = DatasetProfile::Facebook.generate(0.02, 7).unwrap(); // 80 nodes
        let effort = Effort::micro();
        for algo in [
            Algorithm::S3ca,
            Algorithm::S3caIdOnly,
            Algorithm::ImU,
            Algorithm::ImL,
            Algorithm::PmU,
            Algorithm::PmL,
            Algorithm::ImS,
            Algorithm::Random,
        ] {
            let run = run_algorithm(&inst.graph, &inst.data, inst.budget, algo, 32, &effort);
            let v = s3crm_core::objective::evaluate(&inst.graph, &inst.data, &run.deployment);
            assert!(
                v.within_budget(inst.budget),
                "{} exceeded budget: {} > {}",
                algo.label(),
                v.total_cost(),
                inst.budget
            );
        }
    }
}
