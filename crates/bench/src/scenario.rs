//! Algorithm dispatch shared by every experiment.

use crate::effort::Effort;
use osn_graph::{CsrGraph, NodeData};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use s3crm_baselines::im::{im_with_strategy, ImConfig};
use s3crm_baselines::im_s::im_s;
use s3crm_baselines::pm::{pm_with_strategy, PmConfig};
use s3crm_baselines::random_seeds::random_deployment;
use s3crm_baselines::strategy::CouponStrategy;
use s3crm_core::{s3ca, Deployment, S3caConfig, Telemetry};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Every algorithm the harness can run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's contribution (all three phases).
    S3ca,
    /// Ablation: ID phase only.
    S3caIdOnly,
    /// Influence maximization + unlimited coupon strategy.
    ImU,
    /// Influence maximization + limited (Dropbox, k = 32) strategy.
    ImL,
    /// Profit maximization + unlimited strategy.
    PmU,
    /// Profit maximization + limited strategy.
    PmL,
    /// The two-stage shortest-path heuristic.
    ImS,
    /// Random feasible deployment (sanity floor; not in the paper).
    Random,
}

impl Algorithm {
    /// The baseline set the paper's figures compare (Fig. 6 ordering).
    pub const PAPER_SET: [Algorithm; 6] = [
        Algorithm::ImU,
        Algorithm::ImL,
        Algorithm::PmU,
        Algorithm::PmL,
        Algorithm::ImS,
        Algorithm::S3ca,
    ];

    /// The five algorithms of Table III.
    pub const TABLE3_SET: [Algorithm; 5] = [
        Algorithm::ImU,
        Algorithm::ImL,
        Algorithm::PmU,
        Algorithm::PmL,
        Algorithm::S3ca,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::S3ca => "S3CA",
            Algorithm::S3caIdOnly => "S3CA-ID",
            Algorithm::ImU => "IM-U",
            Algorithm::ImL => "IM-L",
            Algorithm::PmU => "PM-U",
            Algorithm::PmL => "PM-L",
            Algorithm::ImS => "IM-S",
            Algorithm::Random => "Random",
        }
    }

    /// The limited-strategy coupon cap used when this algorithm needs one.
    /// Overridable per experiment (the Fig. 8 case study uses the Airbnb /
    /// Booking.com allocations instead of Dropbox's 32).
    pub fn default_limited_cap() -> u32 {
        32
    }
}

/// One algorithm execution: deployment, wall time, optional telemetry.
#[derive(Clone, Debug)]
pub struct AlgoRun {
    pub algorithm: Algorithm,
    pub deployment: Deployment,
    pub wall: Duration,
    /// Populated for S3CA variants.
    pub telemetry: Option<Telemetry>,
}

/// Execute `algorithm` on the instance with the given limited-strategy cap.
pub fn run_algorithm(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    algorithm: Algorithm,
    limited_cap: u32,
    effort: &Effort,
) -> AlgoRun {
    let im_cfg = ImConfig {
        worlds: effort.im_worlds,
        rng_seed: effort.seed ^ 0xD1CE,
        ..ImConfig::default()
    };
    let pm_cfg = PmConfig::default();
    let start = Instant::now();
    let (deployment, telemetry) = match algorithm {
        Algorithm::S3ca => {
            let r = s3ca(graph, data, binv, &S3caConfig::default());
            (r.deployment, Some(r.telemetry))
        }
        Algorithm::S3caIdOnly => {
            let r = s3ca(graph, data, binv, &S3caConfig::id_only());
            (r.deployment, Some(r.telemetry))
        }
        Algorithm::ImU => (
            im_with_strategy(graph, data, binv, CouponStrategy::Unlimited, &im_cfg),
            None,
        ),
        Algorithm::ImL => (
            im_with_strategy(
                graph,
                data,
                binv,
                CouponStrategy::Limited(limited_cap),
                &im_cfg,
            ),
            None,
        ),
        Algorithm::PmU => (
            pm_with_strategy(graph, data, binv, CouponStrategy::Unlimited, &pm_cfg),
            None,
        ),
        Algorithm::PmL => (
            pm_with_strategy(
                graph,
                data,
                binv,
                CouponStrategy::Limited(limited_cap),
                &pm_cfg,
            ),
            None,
        ),
        Algorithm::ImS => (im_s(graph, data, binv, &im_cfg), None),
        Algorithm::Random => {
            let mut rng = SmallRng::seed_from_u64(effort.seed ^ 0xA11CE);
            (
                random_deployment(graph, data, binv, CouponStrategy::Unlimited, &mut rng),
                None,
            )
        }
    };
    AlgoRun {
        algorithm,
        deployment,
        wall: start.elapsed(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_gen::DatasetProfile;

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<&str> = Algorithm::PAPER_SET.iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["IM-U", "IM-L", "PM-U", "PM-L", "IM-S", "S3CA"]);
    }

    #[test]
    fn every_algorithm_runs_and_respects_budget() {
        let inst = DatasetProfile::Facebook.generate(0.02, 7).unwrap(); // 80 nodes
        let effort = Effort::micro();
        for algo in [
            Algorithm::S3ca,
            Algorithm::S3caIdOnly,
            Algorithm::ImU,
            Algorithm::ImL,
            Algorithm::PmU,
            Algorithm::PmL,
            Algorithm::ImS,
            Algorithm::Random,
        ] {
            let run = run_algorithm(&inst.graph, &inst.data, inst.budget, algo, 32, &effort);
            let v = s3crm_core::objective::evaluate(&inst.graph, &inst.data, &run.deployment);
            assert!(
                v.within_budget(inst.budget),
                "{} exceeded budget: {} > {}",
                algo.label(),
                v.total_cost(),
                inst.budget
            );
        }
    }
}
