//! Instance-level experiment runner: execute a set of algorithms, evaluate
//! each deployment with the shared Monte-Carlo world cache, and collect the
//! per-row metrics the figures report.

use crate::effort::Effort;
use crate::scenario::{run_algorithm, AlgoRun, Algorithm};
use osn_graph::{CsrGraph, NodeData};
use osn_propagation::{DeploymentRef, RedemptionReport};
use s3crm_core::Telemetry;

/// One algorithm's evaluated result on one instance.
#[derive(Clone, Debug)]
pub struct Row {
    pub algorithm: Algorithm,
    pub report: RedemptionReport,
    pub wall_ms: f64,
    pub telemetry: Option<Telemetry>,
}

/// Run `algorithms` on the instance and evaluate every deployment on one
/// shared world cache (shared randomness keeps comparisons tight). The
/// algorithms run (and are timed) one at a time; their deployments are then
/// scored together in one batched pass over the cache.
pub fn evaluate_all(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    algorithms: &[Algorithm],
    limited_cap: u32,
    effort: &Effort,
) -> Vec<Row> {
    // Distinct salt keeps evaluation worlds independent of the worlds the
    // IM baselines optimized on (no self-grading).
    let cache = effort.sample_worlds(graph, effort.eval_worlds, effort.seed ^ 0x0E7A_15A1);
    let runs: Vec<AlgoRun> = algorithms
        .iter()
        .map(|&algo| run_algorithm(graph, data, binv, algo, limited_cap, effort))
        .collect();
    let batch: Vec<DeploymentRef<'_>> = runs
        .iter()
        .map(|run| DeploymentRef::from(&run.deployment))
        .collect();
    let reports =
        RedemptionReport::compute_batch_with(graph, data, &batch, &cache, effort.cascade_kernel);
    runs.into_iter()
        .zip(reports)
        .map(|(run, report)| Row {
            algorithm: run.algorithm,
            report,
            wall_ms: run.wall.as_secs_f64() * 1e3,
            telemetry: run.telemetry,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_gen::DatasetProfile;

    #[test]
    fn rows_cover_requested_algorithms() {
        let inst = DatasetProfile::Facebook.generate(0.02, 3).unwrap();
        let rows = evaluate_all(
            &inst.graph,
            &inst.data,
            inst.budget,
            &[Algorithm::S3ca, Algorithm::ImU],
            32,
            &Effort::micro(),
        );
        assert_eq!(rows.len(), 2);
        assert!(rows[0].telemetry.is_some());
        assert!(rows[1].telemetry.is_none());
        for r in &rows {
            assert!(r.report.total_cost <= inst.budget * 1.001);
            assert!(r.wall_ms >= 0.0);
        }
    }
}
