//! Exit-code smoke tests of `repro csvdiff` — the tool CI uses to gate
//! estimator drift and representation/kernel equivalence. A corrupted CSV
//! (non-finite objectives) must fail the diff: `NaN` and `inf` cells used
//! to slip through the relative-tolerance test and exit 0.

use std::path::PathBuf;
use std::process::Command;

fn write_csv(dir: &std::path::Path, name: &str, contents: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write test CSV");
    path
}

fn csvdiff(a: &std::path::Path, b: &std::path::Path, tol: &str) -> i32 {
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["csvdiff", a.to_str().unwrap(), b.to_str().unwrap(), tol])
        .status()
        .expect("spawn repro");
    status.code().expect("repro exits with a code")
}

#[test]
fn csvdiff_exit_codes_cover_nonfinite_corruption() {
    let dir = std::env::temp_dir().join(format!("osn-csvdiff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let good = write_csv(&dir, "good.csv", "budget,benefit\n200,41.25\n400,63.5\n");
    let close = write_csv(&dir, "close.csv", "budget,benefit\n200,41.27\n400,63.52\n");
    let nan = write_csv(&dir, "nan.csv", "budget,benefit\n200,NaN\n400,63.5\n");
    let inf = write_csv(&dir, "inf.csv", "budget,benefit\n200,inf\n400,63.5\n");
    let neg_inf = write_csv(&dir, "neg_inf.csv", "budget,benefit\n200,-inf\n400,63.5\n");

    // Matching and within-tolerance files exit 0.
    assert_eq!(csvdiff(&good, &good, "0.0"), 0);
    assert_eq!(csvdiff(&good, &close, "0.01"), 0);
    // Out-of-tolerance finite drift exits 1.
    assert_eq!(csvdiff(&good, &close, "0.000001"), 1);
    // NaN corruption exits 1 against anything — even itself, and at any
    // tolerance (Rust parses "NaN" as f64, so this exercises the numeric
    // path, not the string fallback).
    assert_eq!(csvdiff(&good, &nan, "1000000.0"), 1);
    assert_eq!(csvdiff(&nan, &nan, "1000000.0"), 1);
    // inf vs finite exits 1; ±inf mismatch exits 1; same-signed inf agrees.
    assert_eq!(csvdiff(&good, &inf, "1000000.0"), 1);
    assert_eq!(csvdiff(&inf, &neg_inf, "1000000.0"), 1);
    assert_eq!(csvdiff(&inf, &inf, "0.0"), 0);
    // Usage errors exit 2.
    assert_eq!(csvdiff(&good, dir.join("missing.csv").as_path(), "0.1"), 2);

    std::fs::remove_dir_all(&dir).ok();
}
