//! Pivot-source queue (Alg. 1, lines 1–9).
//!
//! The ID phase needs, for every user, the value of delegating that user as
//! a fresh influence source. Lines 2–8 of Alg. 1 visit each user at most
//! twice — once evaluating its marginal redemption as a bare seed
//! (`γ_i = 1`), once evaluating one extra coupon (`K_i ← 1`) — and push the
//! resulting *seed package* into a queue `Q` prioritized by redemption rate.
//! Since benefits are positive, the coupon step's MR is positive whenever
//! the user has any friend, so the fixed point is: every budget-feasible
//! user enters `Q` with one coupon if it has out-edges (none otherwise),
//! ranked by the package's standalone redemption rate. That closed form is
//! what this module computes directly, in one `O(Σ deg)` pass.

use osn_graph::{CsrGraph, NodeData, NodeId};
use osn_propagation::cost::redemption_rate;
use osn_propagation::spread::standalone_package;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate seed with its initial coupon allotment, evaluated in
/// isolation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeedPackage {
    pub node: NodeId,
    /// Coupons bundled with the seed (0 or 1, per Alg. 1 lines 7–8).
    pub coupons: u32,
    /// Standalone expected benefit of the package.
    pub benefit: f64,
    /// Standalone total cost (`c_seed` + expected SC cost).
    pub cost: f64,
    /// `benefit / cost` — the queue priority.
    pub rate: f64,
}

impl Eq for SeedPackage {}

impl Ord for SeedPackage {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on rate; node id tie-break keeps pops deterministic.
        self.rate
            .partial_cmp(&other.rate)
            .expect("rates are finite")
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for SeedPackage {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The pivot-source queue: budget-feasible seed packages, best rate first.
#[derive(Debug, Default)]
pub struct PivotQueue {
    heap: BinaryHeap<SeedPackage>,
}

impl PivotQueue {
    /// Build the queue for the whole network under budget `binv`.
    pub fn build(graph: &CsrGraph, data: &NodeData, binv: f64) -> Self {
        let mut heap = BinaryHeap::with_capacity(graph.node_count());
        for v in graph.nodes() {
            if let Some(pkg) = seed_package(graph, data, v, binv) {
                heap.push(pkg);
            }
        }
        PivotQueue { heap }
    }

    /// Pop the best remaining package.
    pub fn pop(&mut self) -> Option<SeedPackage> {
        self.heap.pop()
    }

    /// Remaining package count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidates remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Evaluate one user's seed package: seed + one coupon when the user has
/// friends and the coupon pays (always true with positive benefits), seed
/// alone otherwise. `None` when even the cheapest form exceeds `binv`.
pub fn seed_package(
    graph: &CsrGraph,
    data: &NodeData,
    v: NodeId,
    binv: f64,
) -> Option<SeedPackage> {
    let coupons = u32::from(graph.out_degree(v) > 0);
    let (benefit, cost) = standalone_package(graph, data, v, coupons);
    if cost <= binv {
        return Some(SeedPackage {
            node: v,
            coupons,
            benefit,
            cost,
            rate: redemption_rate(benefit, cost),
        });
    }
    // The coupon-bundled form may break the budget while the bare seed fits
    // (Alg. 1 line 5 checks `Cseed(v_i) + Csc({K_i = 1}) ≤ Binv` for the
    // bundled form only; we degrade gracefully to the bare seed).
    if coupons == 1 && data.seed_cost(v) <= binv {
        let (b0, c0) = standalone_package(graph, data, v, 0);
        return Some(SeedPackage {
            node: v,
            coupons: 0,
            benefit: b0,
            cost: c0,
            rate: redemption_rate(b0, c0),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    fn fixture() -> (CsrGraph, NodeData) {
        // v0 cheap seed with a strong friend; v1 expensive seed; v2 leaf.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        let g = b.build().unwrap();
        let d = NodeData::new(vec![1.0, 1.0, 4.0], vec![0.5, 3.0, 0.5], vec![1.0; 3]).unwrap();
        (g, d)
    }

    #[test]
    fn queue_orders_by_standalone_rate() {
        let (g, d) = fixture();
        let mut q = PivotQueue::build(&g, &d, 100.0);
        assert_eq!(q.len(), 3);
        // Rates: v2 (leaf) 4/0.5 = 8; v0 (1 + 0.9·4)/(0.5 + 0.9) ≈ 3.29;
        // v1 4.6/3.9 ≈ 1.18.
        let first = q.pop().unwrap();
        assert_eq!(first.node, NodeId(2));
        assert!((first.rate - 8.0).abs() < 1e-9);
        let second = q.pop().unwrap();
        assert_eq!(second.node, NodeId(0));
        assert_eq!(second.coupons, 1);
        assert!((second.rate - 4.6 / 1.4).abs() < 1e-9);
        assert_eq!(q.pop().unwrap().node, NodeId(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn leaf_package_has_no_coupons() {
        let (g, d) = fixture();
        let pkg = seed_package(&g, &d, NodeId(2), 100.0).unwrap();
        assert_eq!(pkg.coupons, 0);
        assert_eq!(pkg.benefit, 4.0);
        assert_eq!(pkg.cost, 0.5);
    }

    #[test]
    fn budget_filters_candidates() {
        let (g, d) = fixture();
        // Budget 1.0: v1 (seed cost 3) is out entirely; v0's bundled cost
        // 1.4 exceeds 1.0 so it degrades to the bare seed.
        let mut q = PivotQueue::build(&g, &d, 1.0);
        let nodes: Vec<(NodeId, u32)> = std::iter::from_fn(|| q.pop())
            .map(|p| (p.node, p.coupons))
            .collect();
        assert!(!nodes.iter().any(|&(n, _)| n == NodeId(1)));
        assert!(nodes.contains(&(NodeId(0), 0)));
        assert!(nodes.contains(&(NodeId(2), 0)));
    }

    #[test]
    fn leaf_beats_everyone_by_pure_rate() {
        let (g, d) = fixture();
        let leaf = seed_package(&g, &d, NodeId(2), 100.0).unwrap();
        let root = seed_package(&g, &d, NodeId(0), 100.0).unwrap();
        assert!(leaf.rate > root.rate);
        let mut q = PivotQueue::build(&g, &d, 100.0);
        assert_eq!(q.pop().unwrap().node, NodeId(2));
    }
}
