//! The special cases of Sec. III.
//!
//! The paper shows that both coupon strategies practiced by real platforms
//! are restrictions of S3CRM:
//!
//! 1. **Unlimited coupon strategy** (Uber, Lyft, Hotels.com): coupons are
//!    free and unbounded (`c_sc ≡ 0`, `k_i = |N(v_i)|`) — S3CRM reduces to
//!    `argmax_S B(S) / Cseed(S)` s.t. `Cseed(S) ≤ Binv`, and the
//!    propagation model collapses to plain IC.
//! 2. **Limited coupon strategy** (Dropbox, Airbnb, Booking.com): a fixed
//!    pre-determined allocation `K̂` (`k_i = k` for all) — S3CRM reduces to
//!    seed selection under the remaining budget `Binv − Csc(K̂)`.
//!
//! These reductions are implemented directly and double as an executable
//! sanity check of the claims: the integration tests verify the reduced
//! solvers agree with the general objective evaluated on the restricted
//! decision space.

use crate::deployment::Deployment;
use crate::objective::{self, ObjectiveValue};
use osn_graph::{CsrGraph, NodeData, NodeId};
use osn_propagation::cost::redemption_rate;
use osn_propagation::spread::SpreadState;

/// Benefit of a seed set under plain IC (the unlimited-strategy model:
/// everyone relays to all friends, coupons cost nothing).
pub fn plain_ic_benefit(graph: &CsrGraph, data: &NodeData, seeds: &[NodeId]) -> f64 {
    let coupons: Vec<u32> = graph.nodes().map(|v| graph.out_degree(v) as u32).collect();
    SpreadState::evaluate(graph, data, seeds, &coupons).expected_benefit
}

/// The reduced unlimited-strategy objective `B(S) / Cseed(S)`.
pub fn unlimited_rate(graph: &CsrGraph, data: &NodeData, seeds: &[NodeId]) -> f64 {
    let cost: f64 = seeds.iter().map(|&s| data.seed_cost(s)).sum();
    redemption_rate(plain_ic_benefit(graph, data, seeds), cost)
}

/// Greedy solver for the unlimited special case:
/// `argmax B(S)/Cseed(S)` s.t. `Cseed(S) ≤ Binv`. Candidates are the
/// `pool` highest out-degree users; the greedy keeps the best-rate prefix.
pub fn solve_unlimited(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    pool: usize,
) -> (Vec<NodeId>, f64) {
    let mut candidates: Vec<NodeId> = graph.nodes().collect();
    candidates.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    candidates.truncate(pool.max(1));

    let mut seeds: Vec<NodeId> = Vec::new();
    let mut seed_cost = 0.0;
    let mut best: (Vec<NodeId>, f64) = (Vec::new(), 0.0);
    loop {
        let mut choice: Option<(f64, NodeId, f64)> = None;
        for &cand in &candidates {
            if seeds.contains(&cand) {
                continue;
            }
            let c = data.seed_cost(cand);
            if seed_cost + c > binv || c <= 0.0 && seed_cost + c == 0.0 {
                continue;
            }
            let mut trial = seeds.clone();
            trial.push(cand);
            let rate = redemption_rate(plain_ic_benefit(graph, data, &trial), seed_cost + c);
            if choice.as_ref().is_none_or(|(r, _, _)| rate > *r) {
                choice = Some((rate, cand, c));
            }
        }
        let Some((rate, cand, c)) = choice else { break };
        seeds.push(cand);
        seed_cost += c;
        if rate >= best.1 {
            best = (seeds.clone(), rate);
        }
    }
    best
}

/// Solve the limited special case: the allocation is pre-determined
/// (`k` coupons for every user the spread reaches), seeds are greedily
/// chosen for redemption rate under the full budget. Returns the deployment
/// and its objective.
pub fn solve_limited(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    k: u32,
    pool: usize,
) -> (Deployment, ObjectiveValue) {
    let mut candidates: Vec<NodeId> = graph.nodes().collect();
    candidates.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    candidates.truncate(pool.max(1));

    let n = graph.node_count();
    let mut seeds: Vec<NodeId> = Vec::new();
    let mut best_dep = Deployment::empty(n);
    let mut best_val = ObjectiveValue::default();
    loop {
        let mut choice: Option<(f64, NodeId, Deployment, ObjectiveValue)> = None;
        for &cand in &candidates {
            if seeds.contains(&cand) {
                continue;
            }
            let mut trial_seeds = seeds.clone();
            trial_seeds.push(cand);
            let dep = limited_deployment(graph, &trial_seeds, k);
            let val = objective::evaluate(graph, data, &dep);
            if !val.within_budget(binv) {
                continue;
            }
            if choice.as_ref().is_none_or(|(r, _, _, _)| val.rate > *r) {
                choice = Some((val.rate, cand, dep, val));
            }
        }
        let Some((rate, cand, dep, val)) = choice else {
            break;
        };
        seeds.push(cand);
        if rate >= best_val.rate {
            best_dep = dep;
            best_val = val;
        }
    }
    (best_dep, best_val)
}

/// The limited strategy's deployment: `min(k, degree)` coupons for every
/// node reachable from the seeds.
pub fn limited_deployment(graph: &CsrGraph, seeds: &[NodeId], k: u32) -> Deployment {
    let mut dep = Deployment::empty(graph.node_count());
    for &s in seeds {
        dep.add_seed(s);
    }
    for v in osn_graph::traversal::reachable_set(graph, seeds) {
        dep.coupons[v.index()] = k.min(graph.out_degree(v) as u32);
    }
    dep
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    fn two_stars() -> (CsrGraph, NodeData) {
        // Star A: 0 -> {1,2} (p 0.9); star B: 3 -> {4} (p 0.9).
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 2, 0.9).unwrap();
        b.add_edge(3, 4, 0.9).unwrap();
        let g = b.build().unwrap();
        let d =
            NodeData::new(vec![1.0; 5], vec![1.0, 50.0, 50.0, 2.0, 50.0], vec![0.5; 5]).unwrap();
        (g, d)
    }

    #[test]
    fn unlimited_rate_is_benefit_over_seed_cost() {
        let (g, d) = two_stars();
        // Seed 0: B = 1 + 0.9 + 0.9 = 2.8; rate 2.8 / 1.
        let r = unlimited_rate(&g, &d, &[NodeId(0)]);
        assert!((r - 2.8).abs() < 1e-9);
        // Seed 3: B = 1.9, cost 2 → 0.95.
        let r3 = unlimited_rate(&g, &d, &[NodeId(3)]);
        assert!((r3 - 0.95).abs() < 1e-9);
    }

    #[test]
    fn solve_unlimited_prefers_the_efficient_star() {
        let (g, d) = two_stars();
        let (seeds, rate) = solve_unlimited(&g, &d, 10.0, 8);
        assert_eq!(seeds[0], NodeId(0));
        assert!((rate - 2.8).abs() < 1e-9, "adding star B would dilute");
        assert_eq!(seeds.len(), 1);
    }

    #[test]
    fn solve_unlimited_respects_budget() {
        let (g, d) = two_stars();
        let (seeds, _) = solve_unlimited(&g, &d, 0.5, 8);
        assert!(seeds.is_empty(), "no seed costs ≤ 0.5");
    }

    #[test]
    fn limited_deployment_caps_by_k_and_degree() {
        let (g, _) = two_stars();
        let dep = limited_deployment(&g, &[NodeId(0)], 1);
        assert_eq!(dep.coupons[0], 1, "degree 2 capped at k = 1");
        assert_eq!(dep.coupons[1], 0, "leaf has no out-edges");
        assert_eq!(dep.coupons[3], 0, "unreachable from seed 0");
    }

    #[test]
    fn solve_limited_matches_general_objective_on_restricted_space() {
        // The reduction claim: limited-strategy solving is S3CRM restricted
        // to (seed set, fixed K̂); the returned objective must equal the
        // general evaluation of the returned deployment.
        let (g, d) = two_stars();
        let (dep, val) = solve_limited(&g, &d, 10.0, 2, 8);
        let recheck = objective::evaluate(&g, &d, &dep);
        assert!((val.rate - recheck.rate).abs() < 1e-12);
        assert!(!dep.seeds.is_empty());
    }

    #[test]
    fn unlimited_model_is_plain_ic() {
        // With full out-degree coupons the coupon constraint never binds,
        // so benefit must equal the IC closed form on this forest.
        let (g, d) = two_stars();
        let b = plain_ic_benefit(&g, &d, &[NodeId(0), NodeId(3)]);
        assert!((b - (1.0 + 0.9 + 0.9 + 1.0 + 0.9)).abs() < 1e-9);
    }
}
