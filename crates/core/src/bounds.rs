//! Theorem 2 — the approximation guarantee of S3CA.
//!
//! `S3CA` is a `(1 − e^{−1/(b0·c0)} − ε)`-approximation, where
//! `b0 = max b / min b` and `c0 = max cost / min cost` over positive
//! attributes. Fig. 10 plots `worst case = OPT · ratio`; these helpers
//! regenerate that curve.

use osn_graph::NodeData;

/// `b0 · c0` for an instance.
pub fn spread_product(data: &NodeData) -> f64 {
    data.benefit_spread() * data.cost_spread()
}

/// The Theorem 2 ratio `1 − e^{−1/(b0·c0)} − ε`, clamped to `[0, 1]`.
pub fn approximation_ratio(data: &NodeData, epsilon: f64) -> f64 {
    assert!((0.0..1.0).contains(&epsilon), "ε must lie in [0, 1)");
    let bc = spread_product(data);
    ((1.0 - (-1.0 / bc).exp()) - epsilon).clamp(0.0, 1.0)
}

/// The worst-case redemption rate S3CA may return given the optimum.
pub fn worst_case_bound(opt_rate: f64, data: &NodeData, epsilon: f64) -> f64 {
    opt_rate * approximation_ratio(data, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_instance_reaches_the_constant_ratio() {
        // b0 = c0 = 1 → ratio = 1 − 1/e − ε, the paper's "constant
        // approximation" remark.
        let d = NodeData::uniform(4, 1.0, 1.0, 1.0);
        let r = approximation_ratio(&d, 0.0);
        assert!((r - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!((r - 0.632).abs() < 1e-3);
    }

    #[test]
    fn ratio_shrinks_with_heterogeneity() {
        let uniform = NodeData::uniform(4, 1.0, 1.0, 1.0);
        let skew = NodeData::new(vec![1.0, 10.0, 1.0, 1.0], vec![1.0; 4], vec![1.0; 4]).unwrap();
        assert!(approximation_ratio(&skew, 0.0) < approximation_ratio(&uniform, 0.0));
    }

    #[test]
    fn epsilon_subtracts_and_clamps() {
        let d = NodeData::uniform(2, 1.0, 1.0, 1.0);
        let base = approximation_ratio(&d, 0.0);
        assert!((approximation_ratio(&d, 0.1) - (base - 0.1)).abs() < 1e-12);
        assert_eq!(approximation_ratio(&d, 0.99), 0.0); // clamped
    }

    #[test]
    fn worst_case_scales_opt() {
        let d = NodeData::uniform(2, 1.0, 1.0, 1.0);
        let bound = worst_case_bound(2.0, &d, 0.0);
        assert!((bound - 2.0 * approximation_ratio(&d, 0.0)).abs() < 1e-12);
    }
}
