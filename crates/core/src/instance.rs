//! A complete S3CRM problem instance.

use osn_graph::{CsrGraph, GraphError, NodeData};

/// Graph + per-node attributes + investment budget: everything the problem
/// definition (1a)–(1b) takes as input.
#[derive(Clone, Debug)]
pub struct Instance {
    pub graph: CsrGraph,
    pub data: NodeData,
    /// `Binv`.
    pub budget: f64,
}

impl Instance {
    /// Bundle the parts, validating that the attribute arrays cover the
    /// graph and the budget is usable.
    pub fn new(graph: CsrGraph, data: NodeData, budget: f64) -> Result<Self, GraphError> {
        if data.len() != graph.node_count() {
            return Err(GraphError::AttributeLengthMismatch {
                expected: graph.node_count(),
                got: data.len(),
            });
        }
        if !budget.is_finite() || budget < 0.0 {
            return Err(GraphError::InvalidAttribute {
                node: 0,
                name: "budget",
                value: budget,
            });
        }
        Ok(Instance {
            graph,
            data,
            budget,
        })
    }

    /// Number of users.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of directed relationships.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    #[test]
    fn validates_attribute_coverage() {
        let g = GraphBuilder::new(3).build().unwrap();
        let d = NodeData::uniform(2, 1.0, 1.0, 1.0);
        assert!(Instance::new(g.clone(), d, 1.0).is_err());
        let d3 = NodeData::uniform(3, 1.0, 1.0, 1.0);
        assert!(Instance::new(g, d3, 1.0).is_ok());
    }

    #[test]
    fn rejects_bad_budget() {
        let g = GraphBuilder::new(1).build().unwrap();
        let d = NodeData::uniform(1, 1.0, 1.0, 1.0);
        assert!(Instance::new(g.clone(), d.clone(), -1.0).is_err());
        assert!(Instance::new(g.clone(), d.clone(), f64::NAN).is_err());
        assert!(Instance::new(g, d, 0.0).is_ok());
    }
}
