//! The S3CRM objective, evaluated analytically.
//!
//! One [`ObjectiveValue`] is the `(B, Cseed, Csc, rate)` tuple the greedy
//! phases compare. Final experiment reports use the Monte-Carlo
//! [`RedemptionReport`](osn_propagation::RedemptionReport) instead; the
//! analytic value is what drives the algorithm, matching the paper's worked
//! examples exactly on forests.

use crate::deployment::Deployment;
use osn_graph::{CsrGraph, NodeData};
use osn_propagation::cost::{expected_sc_cost, redemption_rate, seed_cost};
use osn_propagation::spread::SpreadState;
use serde::{Deserialize, Serialize};

/// Analytic evaluation of a deployment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValue {
    /// Expected benefit `B(S, K(I))`.
    pub benefit: f64,
    /// `Cseed(S)`.
    pub seed_cost: f64,
    /// `Csc(K(I))`.
    pub sc_cost: f64,
    /// The redemption rate `B / (Cseed + Csc)` (0 when the cost is 0).
    pub rate: f64,
}

impl ObjectiveValue {
    /// Total cost `Cseed + Csc`.
    pub fn total_cost(&self) -> f64 {
        self.seed_cost + self.sc_cost
    }

    /// Whether the deployment fits budget `binv` (with a small tolerance for
    /// floating-point accumulation).
    pub fn within_budget(&self, binv: f64) -> bool {
        self.total_cost() <= binv * (1.0 + 1e-9) + 1e-12
    }
}

/// Evaluate a deployment's objective analytically.
pub fn evaluate(graph: &CsrGraph, data: &NodeData, dep: &Deployment) -> ObjectiveValue {
    let state = SpreadState::evaluate(graph, data, &dep.seeds, &dep.coupons);
    value_from_state(graph, data, dep, &state)
}

/// As [`evaluate`], reading every component off an incrementally maintained
/// [`SpreadEngine`](osn_propagation::SpreadEngine). Bit-identical to
/// [`evaluate`] of the engine's deployment: the engine maintains benefit and
/// SC cost under the same contract, and the seed cost is the same running
/// sum.
pub fn value_from_engine(engine: &osn_propagation::SpreadEngine<'_>) -> ObjectiveValue {
    value_from_estimator(engine)
}

/// Objective of any maintained [`BenefitEstimator`]: the costs are exact by
/// the estimator contract, the benefit carries the backend's estimation
/// error. Same arithmetic as [`value_from_engine`] (which is this function
/// monomorphized to the exact engine), so swapping backends changes the
/// benefit estimate only, never how the rate is assembled.
pub fn value_from_estimator<E: osn_propagation::BenefitEstimator + ?Sized>(
    est: &E,
) -> ObjectiveValue {
    let benefit = est.expected_benefit();
    let seed = est.seed_cost();
    let sc = est.sc_cost();
    ObjectiveValue {
        benefit,
        seed_cost: seed,
        sc_cost: sc,
        rate: redemption_rate(benefit, seed + sc),
    }
}

/// As [`evaluate`], reusing an already-computed spread state.
pub fn value_from_state(
    graph: &CsrGraph,
    data: &NodeData,
    dep: &Deployment,
    state: &SpreadState,
) -> ObjectiveValue {
    let sc = expected_sc_cost(graph, data, &dep.seeds, &dep.coupons);
    let seed = seed_cost(data, &dep.seeds);
    ObjectiveValue {
        benefit: state.expected_benefit,
        seed_cost: seed,
        sc_cost: sc,
        rate: redemption_rate(state.expected_benefit, seed + sc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::{GraphBuilder, NodeId};

    /// Fig. 1 fixture (duplicated from `osn_gen::fixtures` to keep the dev
    /// graph local).
    fn fig1() -> (CsrGraph, NodeData) {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 3, 0.55).unwrap();
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 0, 0.36).unwrap();
        b.add_edge(1, 2, 0.2).unwrap();
        b.add_edge(2, 3, 0.7).unwrap();
        b.add_edge(2, 1, 0.5).unwrap();
        b.add_edge(3, 4, 0.9).unwrap();
        let d = NodeData::new(
            vec![3.0, 3.0, 3.0, 3.0, 6.0],
            vec![1.0, 1.54, 1.5, 100.0, 100.0],
            vec![1.0; 5],
        )
        .unwrap();
        (b.build().unwrap(), d)
    }

    #[test]
    fn fig1_case3_objective_is_the_paper_optimum() {
        let (g, d) = fig1();
        let mut dep = Deployment::empty(5);
        dep.add_seed(NodeId(0));
        dep.add_coupons(&g, NodeId(0), 1);
        dep.add_coupons(&g, NodeId(3), 1);
        let v = evaluate(&g, &d, &dep);
        assert!((v.benefit - 8.295).abs() < 1e-9, "benefit {}", v.benefit);
        assert!((v.total_cost() - 2.675).abs() < 1e-9);
        assert!((v.rate - 8.295 / 2.675).abs() < 1e-9);
        assert!(v.within_budget(3.5));
        assert!(!v.within_budget(2.0));
    }

    #[test]
    fn empty_deployment_is_all_zero() {
        let (g, d) = fig1();
        let v = evaluate(&g, &d, &Deployment::empty(5));
        assert_eq!(v, ObjectiveValue::default());
    }
}
