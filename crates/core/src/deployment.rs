//! The decision variables of S3CRM: `(S, I, K(I))`.
//!
//! `I` is represented implicitly: a node is internal exactly when it holds
//! at least one coupon, matching the paper's `K(I) = {k_i | v_i ∈ I}`.

use osn_graph::{CsrGraph, NodeId};
use osn_propagation::DeploymentRef;
use serde::{Deserialize, Serialize};

/// A (partial or final) solution: the seed set and per-node coupon counts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    /// Selected seeds `S`, in selection order (no duplicates).
    pub seeds: Vec<NodeId>,
    /// `k_i` per node (0 for non-internal nodes); indexed by node id.
    pub coupons: Vec<u32>,
}

impl Deployment {
    /// Empty deployment over `n` users.
    pub fn empty(n: usize) -> Self {
        Deployment {
            seeds: Vec::new(),
            coupons: vec![0; n],
        }
    }

    /// Number of users covered.
    pub fn len(&self) -> usize {
        self.coupons.len()
    }

    /// True when no user exists.
    pub fn is_empty(&self) -> bool {
        self.coupons.is_empty()
    }

    /// Whether `v` is a seed.
    pub fn is_seed(&self, v: NodeId) -> bool {
        self.seeds.contains(&v)
    }

    /// Add a seed (idempotent).
    pub fn add_seed(&mut self, v: NodeId) {
        if !self.is_seed(v) {
            self.seeds.push(v);
        }
    }

    /// Give `v` extra coupons, capped at its out-degree (a user can never
    /// refer more friends than they have: `k_i ∈ [0, |N(v_i)|]`). Returns
    /// the number actually added.
    pub fn add_coupons(&mut self, graph: &CsrGraph, v: NodeId, count: u32) -> u32 {
        let cap = graph.out_degree(v) as u32;
        let cur = self.coupons[v.index()];
        let add = count.min(cap.saturating_sub(cur));
        self.coupons[v.index()] = cur + add;
        add
    }

    /// Remove up to `count` coupons from `v`; returns the number removed.
    pub fn remove_coupons(&mut self, v: NodeId, count: u32) -> u32 {
        let cur = self.coupons[v.index()];
        let take = count.min(cur);
        self.coupons[v.index()] = cur - take;
        take
    }

    /// The internal node set `I` = coupon holders.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        self.coupons
            .iter()
            .enumerate()
            .filter(|(_, &k)| k > 0)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Total allocated coupons `Σ k_i`.
    pub fn total_coupons(&self) -> u64 {
        self.coupons.iter().map(|&k| k as u64).sum()
    }
}

/// Borrow a deployment as the batched-evaluation view — the one conversion
/// every greedy loop uses to build `simulate_batch` submissions.
impl<'a> From<&'a Deployment> for DeploymentRef<'a> {
    fn from(dep: &'a Deployment) -> Self {
        DeploymentRef {
            seeds: &dep.seeds,
            coupons: &dep.coupons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    fn graph() -> CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn coupons_capped_at_out_degree() {
        let g = graph();
        let mut d = Deployment::empty(3);
        assert_eq!(d.add_coupons(&g, NodeId(0), 5), 2);
        assert_eq!(d.coupons[0], 2);
        assert_eq!(d.add_coupons(&g, NodeId(0), 1), 0);
        // Leaf node can hold no coupons at all.
        assert_eq!(d.add_coupons(&g, NodeId(1), 3), 0);
    }

    #[test]
    fn internal_nodes_are_coupon_holders() {
        let g = graph();
        let mut d = Deployment::empty(3);
        assert!(d.internal_nodes().is_empty());
        d.add_coupons(&g, NodeId(0), 1);
        assert_eq!(d.internal_nodes(), vec![NodeId(0)]);
        assert_eq!(d.total_coupons(), 1);
    }

    #[test]
    fn seeds_are_deduplicated() {
        let mut d = Deployment::empty(3);
        d.add_seed(NodeId(1));
        d.add_seed(NodeId(1));
        assert_eq!(d.seeds, vec![NodeId(1)]);
        assert!(d.is_seed(NodeId(1)));
        assert!(!d.is_seed(NodeId(0)));
    }

    #[test]
    fn remove_coupons_saturates() {
        let g = graph();
        let mut d = Deployment::empty(3);
        d.add_coupons(&g, NodeId(0), 2);
        assert_eq!(d.remove_coupons(NodeId(0), 5), 2);
        assert_eq!(d.coupons[0], 0);
        assert_eq!(d.remove_coupons(NodeId(0), 1), 0);
    }
}
