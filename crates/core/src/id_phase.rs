//! Phase 1 — Investment Deployment (Alg. 1, lines 1–24).
//!
//! Greedy deployment of the budget across three strategies:
//!
//! 1. **broaden** — one more coupon to a current internal node (also turns
//!    its most valuable dependent edge independent);
//! 2. **deepen** — a first coupon to an influenced non-internal node at the
//!    spread frontier;
//! 3. **new source** — activate the next pivot-source package from the
//!    [`PivotQueue`](crate::pivot::PivotQueue).
//!
//! Each iteration compares the best marginal redemption (MR) of strategies
//! 1–2 against the standalone redemption rate of the current pivot source
//! (strategy 3) and applies the winner, if it fits the remaining budget.
//! Every intermediate deployment is a candidate; the phase returns the one
//! with the highest redemption rate (Alg. 1 line 24), which we track as a
//! running argmax instead of materializing the full candidate list `D`.

use crate::deployment::Deployment;
use crate::objective::{self, ObjectiveValue};
use crate::pivot::{PivotQueue, SeedPackage};
use osn_graph::{CsrGraph, NodeData, NodeId};
use osn_propagation::spread::SpreadState;

/// Marks nodes whose neighborhoods the algorithm actually expanded — the
/// numerator of Fig. 9's *explored ratio*.
#[derive(Clone, Debug)]
pub struct ExploreTracker {
    mask: Vec<bool>,
    count: usize,
}

impl ExploreTracker {
    /// Tracker over `n` nodes.
    pub fn new(n: usize) -> Self {
        ExploreTracker {
            mask: vec![false; n],
            count: 0,
        }
    }

    /// Record that `v`'s adjacency was scanned.
    #[inline]
    pub fn mark(&mut self, v: NodeId) {
        if !self.mask[v.index()] {
            self.mask[v.index()] = true;
            self.count += 1;
        }
    }

    /// Number of explored nodes.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Explored fraction of an `n`-node network.
    pub fn ratio(&self) -> f64 {
        if self.mask.is_empty() {
            0.0
        } else {
            self.count as f64 / self.mask.len() as f64
        }
    }
}

/// Result of the ID phase.
#[derive(Clone, Debug)]
pub struct IdOutcome {
    /// `D*`: the intermediate deployment with the best *analytic*
    /// redemption rate.
    pub deployment: Deployment,
    /// Analytic objective of `D*`.
    pub objective: ObjectiveValue,
    /// Greedy moves applied (coupons bought + seeds activated).
    pub iterations: usize,
    /// Budget-milestone snapshots of the greedy trajectory (one roughly per
    /// twelfth of the budget, plus the final deployment). The paper's line
    /// 24 picks `D*` from the candidate list `D` by Monte-Carlo-estimated
    /// rate; [`s3ca`](crate::s3ca::s3ca) re-ranks these snapshots the same
    /// way, which matters on cyclic graphs where the fast analytic
    /// evaluator systematically underestimates deep spreads.
    pub snapshots: Vec<Deployment>,
}

/// Tolerance for budget comparisons (floating-point accumulation).
const BUDGET_EPS: f64 = 1e-9;

/// Run Investment Deployment under budget `binv`.
pub fn investment_deployment(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    explored: &mut ExploreTracker,
    max_iterations: usize,
) -> IdOutcome {
    let n = graph.node_count();
    let mut queue = PivotQueue::build(graph, data, binv);
    let mut dep = Deployment::empty(n);

    // Initial influence source: the best feasible package.
    let Some(first) = queue.pop() else {
        return IdOutcome {
            deployment: dep,
            objective: ObjectiveValue::default(),
            iterations: 0,
            snapshots: Vec::new(),
        };
    };
    apply_package(graph, &mut dep, &first);
    explored.mark(first.node);

    let mut pivot = next_usable_pivot(&mut queue, &dep);
    let mut state = SpreadState::evaluate(graph, data, &dep.seeds, &dep.coupons);
    let mut value = objective::value_from_state(graph, data, &dep, &state);

    let mut best_dep = dep.clone();
    let mut best_value = value;
    let mut iterations = 1usize;
    let mut snapshots: Vec<Deployment> = vec![dep.clone()];
    let milestone = (binv / 12.0).max(f64::MIN_POSITIVE);
    let mut next_milestone = value.total_cost() + milestone;

    while iterations < max_iterations {
        // Best coupon move (strategies 1–2) over the current spread.
        let mut best_mr = 0.0f64;
        let mut best_node: Option<(NodeId, f64, f64)> = None;
        for &u in &state.order {
            if state.active_prob[u.index()] <= 0.0 {
                continue;
            }
            if dep.coupons[u.index()] >= graph.out_degree(u) as u32 {
                continue;
            }
            explored.mark(u);
            let (db, dc) = state.coupon_delta(graph, data, u, 1);
            if db <= 0.0 {
                continue;
            }
            if value.total_cost() + dc > binv + BUDGET_EPS {
                continue;
            }
            let mr = if dc > 0.0 { db / dc } else { f64::MAX };
            if mr > best_mr {
                best_mr = mr;
                best_node = Some((u, db, dc));
            }
        }

        // Strategy 3: the pivot source's standalone rate.
        let pivot_feasible = pivot
            .as_ref()
            .is_some_and(|p| value.total_cost() + p.cost <= binv + BUDGET_EPS);
        let pivot_rate = pivot.as_ref().map_or(0.0, |p| p.rate);

        let take_coupon = match (best_node.is_some(), pivot_feasible) {
            (false, false) => {
                // Neither fits. If a pivot exists but is too expensive, a
                // cheaper one may hide behind it; advance the queue.
                if pivot.is_some() {
                    pivot = next_usable_pivot(&mut queue, &dep);
                    if pivot.is_some() {
                        continue;
                    }
                }
                break;
            }
            (true, false) => true,
            (false, true) => false,
            // Alg. 1 line 11: the coupon must strictly beat the pivot.
            (true, true) => best_mr > pivot_rate,
        };

        if take_coupon {
            let (u, _, _) = best_node.expect("guarded by take_coupon");
            dep.add_coupons(graph, u, 1);
        } else {
            let pkg = pivot.take().expect("guarded by pivot_feasible");
            apply_package(graph, &mut dep, &pkg);
            explored.mark(pkg.node);
            pivot = next_usable_pivot(&mut queue, &dep);
        }
        iterations += 1;

        state = SpreadState::evaluate(graph, data, &dep.seeds, &dep.coupons);
        value = objective::value_from_state(graph, data, &dep, &state);
        // Ties favor the later (larger) deployment, so equal-rate pivot
        // additions keep extending the spread instead of freezing D* at the
        // first snapshot.
        if value.within_budget(binv) && value.rate >= best_value.rate * (1.0 - 1e-9) {
            best_value = value;
            best_dep = dep.clone();
        }
        if value.within_budget(binv) && value.total_cost() >= next_milestone {
            snapshots.push(dep.clone());
            next_milestone = value.total_cost() + milestone;
        }
    }
    // The final deployment and the analytic argmax are always candidates.
    if snapshots.last() != Some(&dep) && value.within_budget(binv) {
        snapshots.push(dep.clone());
    }
    if snapshots.last() != Some(&best_dep) {
        snapshots.push(best_dep.clone());
    }

    IdOutcome {
        deployment: best_dep,
        objective: best_value,
        iterations,
        snapshots,
    }
}

fn apply_package(graph: &CsrGraph, dep: &mut Deployment, pkg: &SeedPackage) {
    dep.add_seed(pkg.node);
    if pkg.coupons > 0 {
        dep.add_coupons(graph, pkg.node, pkg.coupons);
    }
}

/// Pop pivots until one names a node not yet invested in (a node already in
/// the seed set or holding coupons would double-count its package value).
fn next_usable_pivot(queue: &mut PivotQueue, dep: &Deployment) -> Option<SeedPackage> {
    while let Some(p) = queue.pop() {
        if !dep.is_seed(p.node) && dep.coupons[p.node.index()] == 0 {
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    /// Example 1 instance (Sec. IV-A).
    fn example1() -> (CsrGraph, NodeData) {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1, 0.6).unwrap();
        b.add_edge(0, 2, 0.4).unwrap();
        b.add_edge(1, 3, 0.5).unwrap();
        b.add_edge(1, 4, 0.4).unwrap();
        b.add_edge(2, 5, 0.8).unwrap();
        b.add_edge(2, 6, 0.7).unwrap();
        let mut seed_costs = vec![100.0; 7];
        seed_costs[0] = 0.0;
        (
            b.build().unwrap(),
            NodeData::new(vec![1.0; 7], seed_costs, vec![1.0; 7]).unwrap(),
        )
    }

    #[test]
    fn example1_returns_the_best_rate_snapshot() {
        // The initial deployment (seed v1 with one SC) has rate
        // 1.76/0.76 ≈ 2.32; every further investment in this toy instance
        // dilutes the rate (the next best move, the second coupon on v1,
        // has MR = 1 < 2.32), so D* is the first snapshot (Alg. 1 line 24).
        let (g, d) = example1();
        let mut tracker = ExploreTracker::new(7);
        let out = investment_deployment(&g, &d, 2.0, &mut tracker, 10_000);
        assert_eq!(out.deployment.seeds, vec![NodeId(0)]);
        assert_eq!(out.deployment.coupons[0], 1);
        assert!((out.objective.rate - 1.76 / 0.76).abs() < 1e-9);
        // The loop itself kept investing until the budget ran out.
        assert!(out.iterations > 1, "iterations = {}", out.iterations);
    }

    #[test]
    fn respects_budget() {
        let (g, d) = example1();
        let mut tracker = ExploreTracker::new(7);
        for binv in [0.5, 1.0, 2.0, 5.0] {
            let out = investment_deployment(&g, &d, binv, &mut tracker, 10_000);
            assert!(
                out.objective.within_budget(binv),
                "cost {} exceeds budget {binv}",
                out.objective.total_cost()
            );
        }
    }

    #[test]
    fn empty_when_nothing_affordable() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let d = NodeData::uniform(2, 1.0, 50.0, 1.0);
        let mut tracker = ExploreTracker::new(2);
        let out = investment_deployment(&g, &d, 1.0, &mut tracker, 100);
        assert!(out.deployment.seeds.is_empty());
        assert_eq!(out.objective.rate, 0.0);
    }

    #[test]
    fn picks_high_rate_snapshot_not_last() {
        // A chain where the first coupon is great and the second is poor:
        // the returned D* must be the early snapshot.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.1).unwrap();
        let g = b.build().unwrap();
        let d = NodeData::new(vec![1.0, 5.0, 0.1], vec![0.5, 100.0, 100.0], vec![1.0; 3]).unwrap();
        let mut tracker = ExploreTracker::new(3);
        let out = investment_deployment(&g, &d, 10.0, &mut tracker, 10_000);
        // Deployment keeps v1's coupon; v1→v2's coupon (benefit 0.1·0.1)
        // would dilute the rate and must not be in the returned snapshot.
        assert_eq!(out.deployment.coupons[1], 0);
        assert!(out.objective.rate > 3.0);
    }

    #[test]
    fn multiple_seeds_activated_when_pivot_wins() {
        // Two disconnected cheap stars: after saturating the first, the
        // pivot's rate beats any remaining coupon MR.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        let g = b.build().unwrap();
        let d = NodeData::new(vec![2.0; 4], vec![0.5, 100.0, 0.5, 100.0], vec![1.0; 4]).unwrap();
        let mut tracker = ExploreTracker::new(4);
        let out = investment_deployment(&g, &d, 10.0, &mut tracker, 10_000);
        assert_eq!(out.deployment.seeds.len(), 2, "both stars should seed");
    }

    #[test]
    fn explored_count_is_budget_bounded() {
        // A long chain with a tiny budget: exploration must not touch the
        // whole graph.
        let n = 200;
        let mut b = GraphBuilder::new(n);
        for i in 0..(n as u32 - 1) {
            b.add_edge(i, i + 1, 0.9).unwrap();
        }
        let g = b.build().unwrap();
        let mut seed_costs = vec![100.0; n];
        seed_costs[0] = 0.5;
        let d = NodeData::new(vec![1.0; n], seed_costs, vec![1.0; n]).unwrap();
        let mut tracker = ExploreTracker::new(n);
        let _ = investment_deployment(&g, &d, 3.0, &mut tracker, 10_000);
        assert!(
            tracker.count() < n / 2,
            "explored {} of {n} despite budget 3",
            tracker.count()
        );
    }
}
