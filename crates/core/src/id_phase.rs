//! Phase 1 — Investment Deployment (Alg. 1, lines 1–24).
//!
//! Greedy deployment of the budget across three strategies:
//!
//! 1. **broaden** — one more coupon to a current internal node (also turns
//!    its most valuable dependent edge independent);
//! 2. **deepen** — a first coupon to an influenced non-internal node at the
//!    spread frontier;
//! 3. **new source** — activate the next pivot-source package from the
//!    [`PivotQueue`](crate::pivot::PivotQueue).
//!
//! Each iteration compares the best marginal redemption (MR) of strategies
//! 1–2 against the standalone redemption rate of the current pivot source
//! (strategy 3) and applies the winner, if it fits the remaining budget.
//! Every intermediate deployment is a candidate; the phase returns the one
//! with the highest redemption rate (Alg. 1 line 24), which we track as a
//! running argmax instead of materializing the full candidate list `D`.
//!
//! ## Lazy-greedy candidate ranking
//!
//! [`investment_deployment`] runs on the incremental
//! [`SpreadEngine`](osn_propagation::SpreadEngine) with a CELF-style
//! max-heap of candidate marginals: a candidate is re-scored **only when a
//! committed move actually changed one of its inputs** (its activation
//! probability, its coupon count, an eligible child's subtree gain, or the
//! seed mask), detected with exact-bit granularity from the engine's
//! refresh deltas. Unlike classical CELF — which tolerates stale upper
//! bounds and so can pick differently when marginals *increase* — cached
//! entries here are always exact, and ties break deterministically on the
//! spread-order position, so the heap's argmax is provably the same
//! candidate the exhaustive rescan of
//! [`investment_deployment_reference`] selects. That reference
//! implementation (the seed code path: full `SpreadState` re-evaluation
//! per move, full candidate rescan per iteration) is kept verbatim as the
//! equivalence oracle for tests and the `incremental_eval` bench.

use crate::deployment::Deployment;
use crate::objective::{self, ObjectiveValue};
use crate::pivot::{PivotQueue, SeedPackage};
use osn_graph::{CsrGraph, NodeData, NodeId};
use osn_propagation::spread::SpreadState;
use osn_propagation::{BenefitEstimator, DeltaScratch, EngineCounters, RefreshDelta, SpreadEngine};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Marks nodes whose neighborhoods the algorithm actually expanded — the
/// numerator of Fig. 9's *explored ratio*.
#[derive(Clone, Debug)]
pub struct ExploreTracker {
    mask: Vec<bool>,
    count: usize,
}

impl ExploreTracker {
    /// Tracker over `n` nodes.
    pub fn new(n: usize) -> Self {
        ExploreTracker {
            mask: vec![false; n],
            count: 0,
        }
    }

    /// Record that `v`'s adjacency was scanned.
    #[inline]
    pub fn mark(&mut self, v: NodeId) {
        if !self.mask[v.index()] {
            self.mask[v.index()] = true;
            self.count += 1;
        }
    }

    /// Number of explored nodes.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Explored fraction of an `n`-node network.
    pub fn ratio(&self) -> f64 {
        if self.mask.is_empty() {
            0.0
        } else {
            self.count as f64 / self.mask.len() as f64
        }
    }
}

/// One budget-milestone snapshot of the greedy trajectory, carrying the
/// analytic objective computed when it was live — so the S3CA snapshot
/// re-ranking never re-evaluates a deployment the engine already scored.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The intermediate deployment.
    pub deployment: Deployment,
    /// Its analytic objective at snapshot time (bit-identical to
    /// `objective::evaluate` of the deployment).
    pub objective: ObjectiveValue,
}

/// Result of the ID phase.
#[derive(Clone, Debug)]
pub struct IdOutcome {
    /// `D*`: the intermediate deployment with the best *analytic*
    /// redemption rate.
    pub deployment: Deployment,
    /// Analytic objective of `D*`.
    pub objective: ObjectiveValue,
    /// Greedy moves applied (coupons bought + seeds activated).
    pub iterations: usize,
    /// Budget-milestone snapshots of the greedy trajectory (one roughly per
    /// twelfth of the budget, plus the final deployment). The paper's line
    /// 24 picks `D*` from the candidate list `D` by Monte-Carlo-estimated
    /// rate; [`s3ca`](crate::s3ca::s3ca) re-ranks these snapshots the same
    /// way, which matters on cyclic graphs where the fast analytic
    /// evaluator systematically underestimates deep spreads.
    pub snapshots: Vec<Snapshot>,
    /// Spread-engine effort counters (zero for the reference path).
    pub eval_counters: EngineCounters,
    /// Lazy-heap candidate re-scores (the reference path counts its
    /// exhaustive rescans here instead).
    pub lazy_rescores: u64,
}

impl IdOutcome {
    fn empty(n: usize) -> IdOutcome {
        IdOutcome {
            deployment: Deployment::empty(n),
            objective: ObjectiveValue::default(),
            iterations: 0,
            snapshots: Vec::new(),
            eval_counters: EngineCounters::default(),
            lazy_rescores: 0,
        }
    }
}

/// Tolerance for budget comparisons (floating-point accumulation).
const BUDGET_EPS: f64 = 1e-9;

/// A lazy-greedy heap entry: exact marginal-redemption key plus the
/// spread-order position for deterministic tie-breaking (earliest wins,
/// matching the reference scan's first-strictly-greater rule).
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    mr: f64,
    pos: u32,
    node: NodeId,
    version: u32,
    db: f64,
    dc: f64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on MR; on exact ties the earlier spread position wins.
        self.mr
            .partial_cmp(&other.mr)
            .expect("marginal rates are finite")
            .then(other.pos.cmp(&self.pos))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The candidate index of the lazy-greedy loop: exact cached marginals per
/// node, staleness versions that invalidate heap entries, and dirty-driven
/// re-scoring.
struct CandidateHeap {
    /// Current staleness counter per node; heap entries with an older
    /// version are skipped on pop.
    version: Vec<u32>,
    /// Cached exact `(ΔB, ΔCsc)` per node.
    db: Vec<f64>,
    dc: Vec<f64>,
    /// Whether the cached marginal reflects the current engine state.
    scored: Vec<bool>,
    /// Position in the current spread order (tie-break key).
    pos: Vec<u32>,
    heap: BinaryHeap<HeapEntry>,
    /// Dedup stamp for dirty collection.
    stamp: Vec<u32>,
    stamp_gen: u32,
    dirty: Vec<NodeId>,
    rescores: u64,
}

impl CandidateHeap {
    fn new(n: usize) -> CandidateHeap {
        CandidateHeap {
            version: vec![0; n],
            db: vec![0.0; n],
            dc: vec![0.0; n],
            scored: vec![false; n],
            pos: vec![0; n],
            heap: BinaryHeap::new(),
            stamp: vec![0; n],
            stamp_gen: 0,
            dirty: Vec::new(),
            rescores: 0,
        }
    }

    fn rescore<E: BenefitEstimator + ?Sized>(
        &mut self,
        est: &E,
        u: NodeId,
        scratch: &mut DeltaScratch,
    ) {
        let (db, dc) = est.coupon_add_delta(u, scratch);
        self.db[u.index()] = db;
        self.dc[u.index()] = dc;
        self.scored[u.index()] = true;
        self.rescores += 1;
    }

    fn push_if_positive(&mut self, u: NodeId) {
        let db = self.db[u.index()];
        if db <= 0.0 {
            return;
        }
        let dc = self.dc[u.index()];
        let mr = if dc > 0.0 { db / dc } else { f64::MAX };
        self.heap.push(HeapEntry {
            mr,
            pos: self.pos[u.index()],
            node: u,
            version: self.version[u.index()],
            db,
            dc,
        });
    }

    fn is_candidate<E: BenefitEstimator + ?Sized>(est: &E, graph: &CsrGraph, u: NodeId) -> bool {
        est.active_prob()[u.index()] > 0.0 && est.coupons()[u.index()] < graph.out_degree(u) as u32
    }

    /// Full re-index after a structural change: positions shift, membership
    /// may change, but exact cached marginals of untouched candidates are
    /// reused as-is.
    fn rebuild_all<E: BenefitEstimator + ?Sized>(
        &mut self,
        est: &E,
        graph: &CsrGraph,
        scratch: &mut DeltaScratch,
    ) {
        self.heap.clear();
        for v in self.version.iter_mut() {
            *v = v.wrapping_add(1);
        }
        for (p, &u) in est.order().iter().enumerate() {
            self.pos[u.index()] = p as u32;
            if !Self::is_candidate(est, graph, u) {
                continue;
            }
            if !self.scored[u.index()] {
                self.rescore(est, u, scratch);
            }
            self.push_if_positive(u);
        }
    }

    /// Fold a committed move's refresh delta into the index: only nodes
    /// whose marginal inputs changed (bitwise) are invalidated and
    /// re-scored.
    fn apply<E: BenefitEstimator + ?Sized>(
        &mut self,
        est: &E,
        graph: &CsrGraph,
        delta: &RefreshDelta,
        moved: NodeId,
        scratch: &mut DeltaScratch,
    ) {
        // Dirty = the moved node (its k changed), every node whose
        // activation probability changed, and every in-neighbor of a node
        // whose subtree gain changed (their ΔB terms read that gain).
        self.stamp_gen += 1;
        self.dirty.clear();
        let mark = |lists: &mut Self, u: NodeId| {
            if lists.stamp[u.index()] != lists.stamp_gen {
                lists.stamp[u.index()] = lists.stamp_gen;
                lists.dirty.push(u);
            }
        };
        mark(self, moved);
        for &u in &delta.probs_changed {
            mark(self, u);
        }
        for &u in &delta.eligibility_changed {
            mark(self, u);
        }
        for &g in &delta.gains_changed {
            for &src in graph.in_sources(g) {
                mark(self, src);
            }
        }
        let dirty = std::mem::take(&mut self.dirty);
        for &u in &dirty {
            self.scored[u.index()] = false;
        }
        if delta.structural {
            self.dirty = dirty;
            self.rebuild_all(est, graph, scratch);
            self.dirty.clear();
            return;
        }
        for &u in &dirty {
            self.version[u.index()] = self.version[u.index()].wrapping_add(1);
            if Self::is_candidate(est, graph, u) {
                self.rescore(est, u, scratch);
                self.push_if_positive(u);
            }
        }
        self.dirty = dirty;
    }

    /// The exact argmax the reference rescan would select: best feasible
    /// marginal under the current spent budget. Entries that no longer fit
    /// are discarded outright, which is safe because of a two-part
    /// invariant: (a) across *non-structural* stretches (broaden moves
    /// only) the total cost is non-decreasing — a broaden's ΔCsc is
    /// `Σ dq·c_sc ≥ 0` since q is monotone in k and `NodeData` rejects
    /// negative costs — while a clean candidate's ΔCsc is fixed, so
    /// infeasible stays infeasible; and (b) every move that *can* lower
    /// the total cost (a seed package may remove a coupon-priced child
    /// from its in-neighbors' Table-I terms) is structural, and
    /// [`rebuild_all`](Self::rebuild_all) re-pushes every candidate from
    /// its exact cache — discarded entries included — before the next
    /// selection.
    fn pop_best(&mut self, cost_now: f64, binv: f64) -> Option<(NodeId, f64, f64, f64)> {
        while let Some(e) = self.heap.peek() {
            if e.version != self.version[e.node.index()] {
                self.heap.pop();
                continue;
            }
            if cost_now + e.dc > binv + BUDGET_EPS {
                self.heap.pop();
                continue;
            }
            return Some((e.node, e.db, e.dc, e.mr));
        }
        None
    }
}

/// Mark every node the exhaustive scan would have expanded this iteration
/// (candidate-set parity with the reference implementation keeps Fig. 9's
/// explored ratio byte-identical).
fn mark_explored<E: BenefitEstimator + ?Sized>(
    est: &E,
    graph: &CsrGraph,
    explored: &mut ExploreTracker,
) {
    for &u in est.order() {
        if est.active_prob()[u.index()] <= 0.0 {
            continue;
        }
        if est.coupons()[u.index()] >= graph.out_degree(u) as u32 {
            continue;
        }
        explored.mark(u);
    }
}

/// Run Investment Deployment under budget `binv` on the incremental spread
/// engine with lazy-greedy candidate ranking. Decision-for-decision (and
/// bit-for-bit in every reported value) identical to
/// [`investment_deployment_reference`]; `tests/determinism.rs` pins the
/// equivalence.
pub fn investment_deployment(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    explored: &mut ExploreTracker,
    max_iterations: usize,
) -> IdOutcome {
    // The closure monomorphizes `investment_deployment_with` to the exact
    // engine; the trait impl is pure delegation, so this compiles to the
    // same floating-point sequence as the pre-seam hard-wired loop.
    investment_deployment_with(
        graph,
        data,
        binv,
        explored,
        max_iterations,
        |seeds, coupons| SpreadEngine::new(graph, data, seeds, coupons),
    )
}

/// The generic ID phase: identical greedy loop, driven through any
/// [`BenefitEstimator`] built by `make_estimator` from the initial pivot
/// deployment. [`investment_deployment`] instantiates it with the exact
/// [`SpreadEngine`]; the `--estimator sketch` path instantiates it with the
/// `osn-sketch` coverage oracle. The objective values reported in the
/// outcome carry the *backend's* benefit estimates (costs are exact by the
/// estimator contract); callers that need the analytic objective of a
/// non-exact backend's deployment re-evaluate it with
/// [`objective::evaluate`].
pub fn investment_deployment_with<E, F>(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    explored: &mut ExploreTracker,
    max_iterations: usize,
    make_estimator: F,
) -> IdOutcome
where
    E: BenefitEstimator,
    F: FnOnce(&[NodeId], &[u32]) -> E,
{
    let n = graph.node_count();
    let mut queue = PivotQueue::build(graph, data, binv);
    let mut dep = Deployment::empty(n);

    // Initial influence source: the best feasible package.
    let Some(first) = queue.pop() else {
        return IdOutcome::empty(n);
    };
    apply_package(graph, &mut dep, &first);
    explored.mark(first.node);

    let mut pivot = next_usable_pivot(&mut queue, &dep);
    let mut engine = make_estimator(&dep.seeds, &dep.coupons);
    let mut value = objective::value_from_estimator(&engine);
    let mut scratch = DeltaScratch::default();
    let mut cache = CandidateHeap::new(n);
    cache.rebuild_all(&engine, graph, &mut scratch);

    let mut best_dep = dep.clone();
    let mut best_value = value;
    let mut iterations = 1usize;
    let mut snapshots: Vec<Snapshot> = vec![Snapshot {
        deployment: dep.clone(),
        objective: value,
    }];
    let milestone = (binv / 12.0).max(f64::MIN_POSITIVE);
    let mut next_milestone = value.total_cost() + milestone;

    while iterations < max_iterations {
        // Best coupon move (strategies 1–2) over the current spread.
        mark_explored(&engine, graph, explored);
        let best_node = cache.pop_best(value.total_cost(), binv);

        // Strategy 3: the pivot source's standalone rate.
        let pivot_feasible = pivot
            .as_ref()
            .is_some_and(|p| value.total_cost() + p.cost <= binv + BUDGET_EPS);
        let pivot_rate = pivot.as_ref().map_or(0.0, |p| p.rate);

        let take_coupon = match (best_node.is_some(), pivot_feasible) {
            (false, false) => {
                // Neither fits. If a pivot exists but is too expensive, a
                // cheaper one may hide behind it; advance the queue.
                if pivot.is_some() {
                    pivot = next_usable_pivot(&mut queue, &dep);
                    if pivot.is_some() {
                        continue;
                    }
                }
                break;
            }
            (true, false) => true,
            (false, true) => false,
            // Alg. 1 line 11: the coupon must strictly beat the pivot.
            (true, true) => best_node.expect("guarded").3 > pivot_rate,
        };

        if take_coupon {
            let (u, ..) = best_node.expect("guarded by take_coupon");
            dep.add_coupons(graph, u, 1);
            let (_, delta) = engine.add_coupons(u, 1);
            cache.apply(&engine, graph, &delta, u, &mut scratch);
        } else {
            let pkg = pivot.take().expect("guarded by pivot_feasible");
            apply_package(graph, &mut dep, &pkg);
            explored.mark(pkg.node);
            pivot = next_usable_pivot(&mut queue, &dep);
            let delta = engine.add_seed_package(pkg.node, pkg.coupons);
            cache.apply(&engine, graph, &delta, pkg.node, &mut scratch);
        }
        iterations += 1;

        value = objective::value_from_estimator(&engine);
        // Ties favor the later (larger) deployment, so equal-rate pivot
        // additions keep extending the spread instead of freezing D* at the
        // first snapshot.
        if value.within_budget(binv) && value.rate >= best_value.rate * (1.0 - 1e-9) {
            best_value = value;
            best_dep = dep.clone();
        }
        if value.within_budget(binv) && value.total_cost() >= next_milestone {
            snapshots.push(Snapshot {
                deployment: dep.clone(),
                objective: value,
            });
            next_milestone = value.total_cost() + milestone;
        }
    }
    // The final deployment and the analytic argmax are always candidates.
    if snapshots.last().map(|s| &s.deployment) != Some(&dep) && value.within_budget(binv) {
        snapshots.push(Snapshot {
            deployment: dep.clone(),
            objective: value,
        });
    }
    if snapshots.last().map(|s| &s.deployment) != Some(&best_dep) {
        snapshots.push(Snapshot {
            deployment: best_dep.clone(),
            objective: best_value,
        });
    }

    IdOutcome {
        deployment: best_dep,
        objective: best_value,
        iterations,
        snapshots,
        eval_counters: engine.counters(),
        lazy_rescores: cache.rescores,
    }
}

/// The seed implementation: full [`SpreadState`] re-evaluation after every
/// move and an exhaustive candidate rescan per iteration. Kept verbatim as
/// the equivalence oracle for [`investment_deployment`] (pinned by
/// `tests/determinism.rs`) and as the from-scratch side of the
/// `incremental_eval` bench.
pub fn investment_deployment_reference(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    explored: &mut ExploreTracker,
    max_iterations: usize,
) -> IdOutcome {
    let n = graph.node_count();
    let mut queue = PivotQueue::build(graph, data, binv);
    let mut dep = Deployment::empty(n);

    let Some(first) = queue.pop() else {
        return IdOutcome::empty(n);
    };
    apply_package(graph, &mut dep, &first);
    explored.mark(first.node);

    let mut pivot = next_usable_pivot(&mut queue, &dep);
    let mut state = SpreadState::evaluate(graph, data, &dep.seeds, &dep.coupons);
    let mut value = objective::value_from_state(graph, data, &dep, &state);
    let mut rescans = 0u64;

    let mut best_dep = dep.clone();
    let mut best_value = value;
    let mut iterations = 1usize;
    let mut snapshots: Vec<Snapshot> = vec![Snapshot {
        deployment: dep.clone(),
        objective: value,
    }];
    let milestone = (binv / 12.0).max(f64::MIN_POSITIVE);
    let mut next_milestone = value.total_cost() + milestone;

    while iterations < max_iterations {
        // Best coupon move (strategies 1–2) over the current spread.
        let mut best_mr = 0.0f64;
        let mut best_node: Option<(NodeId, f64, f64)> = None;
        for &u in &state.order {
            if state.active_prob[u.index()] <= 0.0 {
                continue;
            }
            if dep.coupons[u.index()] >= graph.out_degree(u) as u32 {
                continue;
            }
            explored.mark(u);
            let (db, dc) = state.coupon_delta(graph, data, u, 1);
            rescans += 1;
            if db <= 0.0 {
                continue;
            }
            if value.total_cost() + dc > binv + BUDGET_EPS {
                continue;
            }
            let mr = if dc > 0.0 { db / dc } else { f64::MAX };
            if mr > best_mr {
                best_mr = mr;
                best_node = Some((u, db, dc));
            }
        }

        let pivot_feasible = pivot
            .as_ref()
            .is_some_and(|p| value.total_cost() + p.cost <= binv + BUDGET_EPS);
        let pivot_rate = pivot.as_ref().map_or(0.0, |p| p.rate);

        let take_coupon = match (best_node.is_some(), pivot_feasible) {
            (false, false) => {
                if pivot.is_some() {
                    pivot = next_usable_pivot(&mut queue, &dep);
                    if pivot.is_some() {
                        continue;
                    }
                }
                break;
            }
            (true, false) => true,
            (false, true) => false,
            (true, true) => best_mr > pivot_rate,
        };

        if take_coupon {
            let (u, _, _) = best_node.expect("guarded by take_coupon");
            dep.add_coupons(graph, u, 1);
        } else {
            let pkg = pivot.take().expect("guarded by pivot_feasible");
            apply_package(graph, &mut dep, &pkg);
            explored.mark(pkg.node);
            pivot = next_usable_pivot(&mut queue, &dep);
        }
        iterations += 1;

        state = SpreadState::evaluate(graph, data, &dep.seeds, &dep.coupons);
        value = objective::value_from_state(graph, data, &dep, &state);
        if value.within_budget(binv) && value.rate >= best_value.rate * (1.0 - 1e-9) {
            best_value = value;
            best_dep = dep.clone();
        }
        if value.within_budget(binv) && value.total_cost() >= next_milestone {
            snapshots.push(Snapshot {
                deployment: dep.clone(),
                objective: value,
            });
            next_milestone = value.total_cost() + milestone;
        }
    }
    if snapshots.last().map(|s| &s.deployment) != Some(&dep) && value.within_budget(binv) {
        snapshots.push(Snapshot {
            deployment: dep.clone(),
            objective: value,
        });
    }
    if snapshots.last().map(|s| &s.deployment) != Some(&best_dep) {
        snapshots.push(Snapshot {
            deployment: best_dep.clone(),
            objective: best_value,
        });
    }

    IdOutcome {
        deployment: best_dep,
        objective: best_value,
        iterations,
        snapshots,
        eval_counters: EngineCounters::default(),
        lazy_rescores: rescans,
    }
}

fn apply_package(graph: &CsrGraph, dep: &mut Deployment, pkg: &SeedPackage) {
    dep.add_seed(pkg.node);
    if pkg.coupons > 0 {
        dep.add_coupons(graph, pkg.node, pkg.coupons);
    }
}

/// Pop pivots until one names a node not yet invested in (a node already in
/// the seed set or holding coupons would double-count its package value).
fn next_usable_pivot(queue: &mut PivotQueue, dep: &Deployment) -> Option<SeedPackage> {
    while let Some(p) = queue.pop() {
        if !dep.is_seed(p.node) && dep.coupons[p.node.index()] == 0 {
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    /// Example 1 instance (Sec. IV-A).
    fn example1() -> (CsrGraph, NodeData) {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1, 0.6).unwrap();
        b.add_edge(0, 2, 0.4).unwrap();
        b.add_edge(1, 3, 0.5).unwrap();
        b.add_edge(1, 4, 0.4).unwrap();
        b.add_edge(2, 5, 0.8).unwrap();
        b.add_edge(2, 6, 0.7).unwrap();
        let mut seed_costs = vec![100.0; 7];
        seed_costs[0] = 0.0;
        (
            b.build().unwrap(),
            NodeData::new(vec![1.0; 7], seed_costs, vec![1.0; 7]).unwrap(),
        )
    }

    #[test]
    fn example1_returns_the_best_rate_snapshot() {
        // The initial deployment (seed v1 with one SC) has rate
        // 1.76/0.76 ≈ 2.32; every further investment in this toy instance
        // dilutes the rate (the next best move, the second coupon on v1,
        // has MR = 1 < 2.32), so D* is the first snapshot (Alg. 1 line 24).
        let (g, d) = example1();
        let mut tracker = ExploreTracker::new(7);
        let out = investment_deployment(&g, &d, 2.0, &mut tracker, 10_000);
        assert_eq!(out.deployment.seeds, vec![NodeId(0)]);
        assert_eq!(out.deployment.coupons[0], 1);
        assert!((out.objective.rate - 1.76 / 0.76).abs() < 1e-9);
        // The loop itself kept investing until the budget ran out.
        assert!(out.iterations > 1, "iterations = {}", out.iterations);
    }

    #[test]
    fn respects_budget() {
        let (g, d) = example1();
        let mut tracker = ExploreTracker::new(7);
        for binv in [0.5, 1.0, 2.0, 5.0] {
            let out = investment_deployment(&g, &d, binv, &mut tracker, 10_000);
            assert!(
                out.objective.within_budget(binv),
                "cost {} exceeds budget {binv}",
                out.objective.total_cost()
            );
        }
    }

    #[test]
    fn empty_when_nothing_affordable() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let d = NodeData::uniform(2, 1.0, 50.0, 1.0);
        let mut tracker = ExploreTracker::new(2);
        let out = investment_deployment(&g, &d, 1.0, &mut tracker, 100);
        assert!(out.deployment.seeds.is_empty());
        assert_eq!(out.objective.rate, 0.0);
    }

    #[test]
    fn picks_high_rate_snapshot_not_last() {
        // A chain where the first coupon is great and the second is poor:
        // the returned D* must be the early snapshot.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.1).unwrap();
        let g = b.build().unwrap();
        let d = NodeData::new(vec![1.0, 5.0, 0.1], vec![0.5, 100.0, 100.0], vec![1.0; 3]).unwrap();
        let mut tracker = ExploreTracker::new(3);
        let out = investment_deployment(&g, &d, 10.0, &mut tracker, 10_000);
        // Deployment keeps v1's coupon; v1→v2's coupon (benefit 0.1·0.1)
        // would dilute the rate and must not be in the returned snapshot.
        assert_eq!(out.deployment.coupons[1], 0);
        assert!(out.objective.rate > 3.0);
    }

    #[test]
    fn multiple_seeds_activated_when_pivot_wins() {
        // Two disconnected cheap stars: after saturating the first, the
        // pivot's rate beats any remaining coupon MR.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        let g = b.build().unwrap();
        let d = NodeData::new(vec![2.0; 4], vec![0.5, 100.0, 0.5, 100.0], vec![1.0; 4]).unwrap();
        let mut tracker = ExploreTracker::new(4);
        let out = investment_deployment(&g, &d, 10.0, &mut tracker, 10_000);
        assert_eq!(out.deployment.seeds.len(), 2, "both stars should seed");
    }

    #[test]
    fn explored_count_is_budget_bounded() {
        // A long chain with a tiny budget: exploration must not touch the
        // whole graph.
        let n = 200;
        let mut b = GraphBuilder::new(n);
        for i in 0..(n as u32 - 1) {
            b.add_edge(i, i + 1, 0.9).unwrap();
        }
        let g = b.build().unwrap();
        let mut seed_costs = vec![100.0; n];
        seed_costs[0] = 0.5;
        let d = NodeData::new(vec![1.0; n], seed_costs, vec![1.0; n]).unwrap();
        let mut tracker = ExploreTracker::new(n);
        let _ = investment_deployment(&g, &d, 3.0, &mut tracker, 10_000);
        assert!(
            tracker.count() < n / 2,
            "explored {} of {n} despite budget 3",
            tracker.count()
        );
    }

    /// The lazy-greedy engine path must match the reference (exhaustive
    /// rescan + from-scratch evaluation) decision-for-decision and
    /// bit-for-bit — while doing strictly fewer marginal evaluations.
    #[test]
    fn engine_path_matches_reference_bitwise() {
        let (g, d) = example1();
        for binv in [0.5, 1.0, 2.0, 5.0, 50.0] {
            let mut ta = ExploreTracker::new(7);
            let mut tb = ExploreTracker::new(7);
            let a = investment_deployment(&g, &d, binv, &mut ta, 10_000);
            let b = investment_deployment_reference(&g, &d, binv, &mut tb, 10_000);
            assert_eq!(a.deployment, b.deployment, "deployment at Binv {binv}");
            assert_eq!(
                a.objective.rate.to_bits(),
                b.objective.rate.to_bits(),
                "rate at Binv {binv}"
            );
            assert_eq!(a.iterations, b.iterations, "iterations at Binv {binv}");
            assert_eq!(ta.count(), tb.count(), "explored set at Binv {binv}");
            assert_eq!(a.snapshots.len(), b.snapshots.len());
            for (sa, sb) in a.snapshots.iter().zip(b.snapshots.iter()) {
                assert_eq!(sa.deployment, sb.deployment);
                assert_eq!(sa.objective.rate.to_bits(), sb.objective.rate.to_bits());
                assert_eq!(
                    sa.objective.benefit.to_bits(),
                    sb.objective.benefit.to_bits()
                );
            }
            assert!(
                a.lazy_rescores <= b.lazy_rescores,
                "lazy path re-scored more ({} > {}) at Binv {binv}",
                a.lazy_rescores,
                b.lazy_rescores
            );
        }
    }

    /// As above, on an instance where pivot moves actually fire mid-run
    /// (two disconnected stars force a second seed package): the
    /// structural `rebuild_all` must re-admit previously budget-discarded
    /// heap entries exactly like the reference rescan does.
    #[test]
    fn engine_matches_reference_across_pivot_moves() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        let g = b.build().unwrap();
        let d = NodeData::new(vec![2.0; 4], vec![0.5, 100.0, 0.5, 100.0], vec![1.0; 4]).unwrap();
        for binv in [1.0, 2.0, 5.0, 10.0] {
            let mut ta = ExploreTracker::new(4);
            let mut tb = ExploreTracker::new(4);
            let a = investment_deployment(&g, &d, binv, &mut ta, 10_000);
            let b = investment_deployment_reference(&g, &d, binv, &mut tb, 10_000);
            assert_eq!(a.deployment, b.deployment, "deployment at Binv {binv}");
            assert_eq!(
                a.objective.rate.to_bits(),
                b.objective.rate.to_bits(),
                "rate at Binv {binv}"
            );
            assert_eq!(a.iterations, b.iterations, "iterations at Binv {binv}");
            assert_eq!(ta.count(), tb.count(), "explored set at Binv {binv}");
            assert_eq!(a.snapshots.len(), b.snapshots.len());
            for (sa, sb) in a.snapshots.iter().zip(b.snapshots.iter()) {
                assert_eq!(sa.deployment, sb.deployment);
                assert_eq!(sa.objective.rate.to_bits(), sb.objective.rate.to_bits());
                assert_eq!(
                    sa.objective.benefit.to_bits(),
                    sb.objective.benefit.to_bits()
                );
            }
            assert!(
                a.lazy_rescores <= b.lazy_rescores,
                "lazy path re-scored more ({} > {}) at Binv {binv}",
                a.lazy_rescores,
                b.lazy_rescores
            );
        }
    }
}
