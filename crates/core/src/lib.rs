//! # s3crm-core
//!
//! The paper's primary contribution: **S3CA**, the Seed Selection and Social
//! Coupon allocation Algorithm for the S3CRM problem (Chang et al., ICDE
//! 2019).
//!
//! ## The problem (Sec. III)
//!
//! Given an OSN with per-user benefit `b(v)`, seed cost `c_seed(v)` and
//! coupon cost `c_sc(v)`, pick a seed set `S`, internal nodes `I` and a
//! coupon allocation `K(I)` maximizing the **redemption rate**
//!
//! ```text
//!        B(S, K(I))
//!   ─────────────────────        subject to  Cseed + Csc ≤ Binv .
//!   Cseed(S) + Csc(K(I))
//! ```
//!
//! S3CRM is NP-hard and inapproximable beyond `1 − 1/e + ε` (Theorem 1).
//!
//! ## The algorithm (Sec. IV)
//!
//! S3CA runs three phases, one module each:
//!
//! 1. [`id_phase`] — **Investment Deployment**: greedy by *marginal
//!    redemption* over three strategies (broaden the spread, deepen it, or
//!    start a new seed — the latter gated by the *pivot source* queue of
//!    [`pivot`]); keeps the intermediate deployment with the best rate.
//! 2. [`gpi`] — **Guaranteed Path Identification**: a rank-ordered DFS per
//!    seed discovering budget-feasible "guaranteed paths" to valuable
//!    inactive users (every edge independent, no coupon competition).
//! 3. [`scm`] — **SC Maneuver**: reallocates coupons from low
//!    deterioration-index donors to guaranteed-path receivers whenever the
//!    amelioration index says the move pays, committing only maneuvers that
//!    improve the global redemption rate.
//!
//! [`s3ca`](s3ca::s3ca) orchestrates the phases and records telemetry
//! (explored ratio, per-phase wall time) used by the Fig. 9 scalability
//! experiments. [`bounds`] computes the Theorem 2 approximation ratio
//! `1 − e^{−1/(b0·c0)} − ε` backing the Fig. 10 worst-case curves.

pub mod bounds;
pub mod deployment;
pub mod gpi;
pub mod id_phase;
pub mod instance;
pub mod objective;
pub mod pivot;
pub mod s3ca;
pub mod scm;
pub mod special_cases;

pub use deployment::Deployment;
pub use instance::Instance;
pub use objective::ObjectiveValue;
pub use s3ca::{
    s3ca, s3ca_with_snapshot_backend, EstimatorBackend, S3caConfig, S3caResult, Telemetry,
};
