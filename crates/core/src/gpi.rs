//! Phase 2 — Guaranteed Paths Identification (Alg. 2).
//!
//! For each seed `s` of `D*`, a DFS visits descendants **highest influence
//! probability first**. Visiting `v_i` at depth `l_i` forms the candidate
//! guaranteed path
//!
//! ```text
//! g(s, v_i) = {v_i} ∪ {v_j ∈ U^l̂_s | l̂ ≤ l_i}
//! ```
//!
//! where `U^l̂_s` is the set of already-visited nodes at depth `l̂`
//! ("visited siblings of v_i and v_i's ascendants"). Its *guaranteed cost*
//! is the raw coupon cost of every member (each member could receive a
//! coupon, so no edge in the path is dependent — the "guaranteed" property).
//! The visit succeeds only while that cost fits the seed's remaining budget
//! `Binv − c_seed(s)`; on failure the DFS abandons `v_i`'s children *and*
//! its unvisited lower-probability siblings, resuming at the parent's next
//! sibling — exactly Alg. 2's backtrack rule.
//!
//! GPs are stored compactly as (endpoint, visit index): the member set of
//! `g(s, v_i)` is reconstructed on demand as "all earlier visits at depth
//! ≤ `l_i`", which keeps GPI linear in the number of visited nodes instead
//! of quadratic.

use crate::deployment::Deployment;
use crate::id_phase::ExploreTracker;
use osn_graph::{CsrGraph, NodeData, NodeId};

/// One DFS visit record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Visit {
    pub node: NodeId,
    /// DFS depth (the paper's level `l`); the seed sits at 0.
    pub level: u32,
    /// Visit index of the DFS parent (`None` for the seed).
    pub parent: Option<usize>,
}

/// One guaranteed path `g(s, v_i)`; aligned 1:1 with the visit sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuaranteedPath {
    /// The path endpoint `v_i`.
    pub endpoint: NodeId,
    /// Index of the endpoint in the forest's visit sequence.
    pub visit_index: usize,
    /// Endpoint depth.
    pub level: u32,
    /// Guaranteed cost `c_{s,v_i}` (raw `Σ c_sc` over members).
    pub cost: f64,
    /// Guaranteed benefit `b_{s,v_i}` (`Σ b` over members).
    pub benefit: f64,
}

/// All guaranteed paths rooted at one seed.
#[derive(Clone, Debug)]
pub struct GpForest {
    pub seed: NodeId,
    /// Visit sequence in DFS order.
    pub visits: Vec<Visit>,
    /// `paths[i]` is the GP whose endpoint is `visits[i]`.
    pub paths: Vec<GuaranteedPath>,
}

impl GpForest {
    /// Member nodes of `g(s, v_i)` for the path ending at `visit_index`:
    /// every earlier visit at depth ≤ the endpoint's, plus the endpoint.
    pub fn members(&self, visit_index: usize) -> Vec<NodeId> {
        let level = self.visits[visit_index].level;
        self.visits[..=visit_index]
            .iter()
            .filter(|v| v.level <= level)
            .map(|v| v.node)
            .collect()
    }

    /// The GP's coupon allocation `K̂`: each member's count of member
    /// children (Alg. 2: "K_j is set to the number of visited children").
    /// Returned as `(node, K̂_j)` pairs for members with `K̂_j > 0`.
    pub fn allocation(&self, visit_index: usize) -> Vec<(NodeId, u32)> {
        let level = self.visits[visit_index].level;
        let mut in_set = vec![false; self.visits.len()];
        for (i, v) in self.visits[..=visit_index].iter().enumerate() {
            in_set[i] = v.level <= level;
        }
        let mut counts = vec![0u32; self.visits.len()];
        for (i, v) in self.visits[..=visit_index].iter().enumerate() {
            if !in_set[i] {
                continue;
            }
            if let Some(p) = v.parent {
                counts[p] += 1;
            }
        }
        self.visits[..=visit_index]
            .iter()
            .enumerate()
            .filter(|&(i, _)| in_set[i] && counts[i] > 0)
            .map(|(i, v)| (v.node, counts[i]))
            .collect()
    }

    /// Walk the DFS parent chain from the endpoint's parent upward, yielding
    /// visit indices (used by SCM's "nearest possibly activated ascendant").
    pub fn ascendants(&self, visit_index: usize) -> impl Iterator<Item = usize> + '_ {
        let mut cur = self.visits[visit_index].parent;
        std::iter::from_fn(move || {
            let here = cur?;
            cur = self.visits[here].parent;
            Some(here)
        })
    }
}

/// Run GPI for every seed of the deployment.
pub fn identify_guaranteed_paths(
    graph: &CsrGraph,
    data: &NodeData,
    dep: &Deployment,
    binv: f64,
    explored: &mut ExploreTracker,
) -> Vec<GpForest> {
    dep.seeds
        .iter()
        .map(|&s| forest_for_seed(graph, data, s, binv - data.seed_cost(s), explored))
        .collect()
}

fn forest_for_seed(
    graph: &CsrGraph,
    data: &NodeData,
    seed: NodeId,
    budget: f64,
    explored: &mut ExploreTracker,
) -> GpForest {
    let mut visits: Vec<Visit> = Vec::new();
    let mut paths: Vec<GuaranteedPath> = Vec::new();
    let mut visited = vec![false; graph.node_count()];
    // Per-level running sums over visited nodes.
    let mut level_csc: Vec<f64> = Vec::new();
    let mut level_b: Vec<f64> = Vec::new();

    // Stack frames: (node, level, parent visit index). Children are pushed
    // in ascending probability so the highest-probability child pops first.
    let mut stack: Vec<(NodeId, u32, Option<usize>)> = vec![(seed, 0, None)];
    while let Some((node, level, parent)) = stack.pop() {
        if visited[node.index()] {
            continue;
        }
        let l = level as usize;
        // Guaranteed cost of g(s, node): all visited nodes at depth ≤ level
        // plus node itself. The seed's own c_sc is excluded — it is directly
        // activated and never receives a coupon (this is also what makes the
        // paper's SCM precondition `c_{s,v_i} ≤ Csc(K(I*))` satisfiable:
        // Example 3 compares 2.66 < 2.84 on coupon costs alone).
        let own_csc = if level == 0 { 0.0 } else { data.sc_cost(node) };
        let prior_cost: f64 = level_csc.iter().take(l + 1).sum();
        let cost = prior_cost + own_csc;
        if cost > budget {
            // Abandon node, its children, and its unvisited siblings:
            // entries at depth ≥ level on top of the stack are exactly the
            // remaining lower-probability siblings.
            while stack.last().is_some_and(|&(_, sl, _)| sl >= level) {
                stack.pop();
            }
            continue;
        }
        visited[node.index()] = true;
        explored.mark(node);
        if level_csc.len() <= l {
            level_csc.resize(l + 1, 0.0);
            level_b.resize(l + 1, 0.0);
        }
        let prior_benefit: f64 = level_b.iter().take(l + 1).sum();
        let benefit = prior_benefit + data.benefit(node);
        level_csc[l] += own_csc;
        level_b[l] += data.benefit(node);

        let visit_index = visits.len();
        visits.push(Visit {
            node,
            level,
            parent,
        });
        paths.push(GuaranteedPath {
            endpoint: node,
            visit_index,
            level,
            cost,
            benefit,
        });

        // Highest-probability child must pop first → push in reverse rank
        // order (ascending probability).
        for &child in graph.out_targets(node).iter().rev() {
            if !visited[child.index()] {
                stack.push((child, level + 1, Some(visit_index)));
            }
        }
    }

    GpForest {
        seed,
        visits,
        paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    /// Two-level tree with distinct probabilities (Example 1 shape).
    fn tree() -> (CsrGraph, NodeData) {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1, 0.6).unwrap();
        b.add_edge(0, 2, 0.4).unwrap();
        b.add_edge(1, 3, 0.5).unwrap();
        b.add_edge(1, 4, 0.4).unwrap();
        b.add_edge(2, 5, 0.8).unwrap();
        b.add_edge(2, 6, 0.7).unwrap();
        let mut sc = vec![100.0; 7];
        sc[0] = 0.0;
        (
            b.build().unwrap(),
            NodeData::new(vec![1.0; 7], sc, vec![1.0; 7]).unwrap(),
        )
    }

    fn run(budget: f64) -> GpForest {
        let (g, d) = tree();
        let mut dep = Deployment::empty(7);
        dep.add_seed(NodeId(0));
        let mut tracker = ExploreTracker::new(7);
        identify_guaranteed_paths(&g, &d, &dep, budget, &mut tracker)
            .into_iter()
            .next()
            .unwrap()
    }

    #[test]
    fn dfs_visits_highest_probability_first() {
        let f = run(100.0);
        let order: Vec<NodeId> = f.visits.iter().map(|v| v.node).collect();
        // From v0: v1 (0.6) before v2 (0.4); under v1: v3 (0.5) then v4.
        assert_eq!(
            order,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(3),
                NodeId(4),
                NodeId(2),
                NodeId(5),
                NodeId(6)
            ]
        );
    }

    #[test]
    fn member_sets_follow_the_paper_definition() {
        let f = run(100.0);
        // g(s, v4): visits before it at level ≤ 2 are v0, v1, v3.
        let idx = f.visits.iter().position(|v| v.node == NodeId(4)).unwrap();
        assert_eq!(
            f.members(idx),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]
        );
        // g(s, v2): levels ≤ 1 → {v0, v1, v2}; the level-2 leaves v3, v4
        // are excluded even though visited earlier.
        let idx2 = f.visits.iter().position(|v| v.node == NodeId(2)).unwrap();
        assert_eq!(f.members(idx2), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn guaranteed_cost_counts_all_members() {
        let f = run(100.0);
        let idx = f.visits.iter().position(|v| v.node == NodeId(4)).unwrap();
        // Members {v0, v1, v3, v4}: c_sc = 0 + 1 + 1 + 1.
        assert!((f.paths[idx].cost - 3.0).abs() < 1e-12);
        assert!((f.paths[idx].benefit - 4.0).abs() < 1e-12);
    }

    #[test]
    fn allocation_counts_member_children() {
        let f = run(100.0);
        let idx = f.visits.iter().position(|v| v.node == NodeId(4)).unwrap();
        let alloc = f.allocation(idx);
        // v0 → 1 member child (v1); v1 → 2 (v3, v4).
        assert_eq!(alloc, vec![(NodeId(0), 1), (NodeId(1), 2)]);
    }

    #[test]
    fn budget_prunes_siblings_and_descendants() {
        // Budget 2.5: v0 (cost 0), v1 (1), v3 (2) pass; v4 would cost 3 —
        // rejected, pruning the rest of level 2. The DFS resumes at v2
        // (level 1): levels ≤ 1 sum to 1, so its path costs 2 and passes;
        // its children then cost 4 and are rejected.
        let f = run(2.5);
        let order: Vec<NodeId> = f.visits.iter().map(|v| v.node).collect();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)]);
    }

    #[test]
    fn sibling_pruning_skips_lower_probability_branches() {
        // Make the first child's subtree exhaust the budget; the DFS must
        // not descend into the second child's subtree after the failure at
        // the same level.
        let f = run(1.5); // {v0 (0), v1 (1)} ok; v3 costs 2.5 > 1.5 → prune
        let order: Vec<NodeId> = f.visits.iter().map(|v| v.node).collect();
        // After pruning v3 (level 2) and sibling v4, DFS resumes at v2
        // (level 1, cost 0+1+1 = 2 > 1.5 → rejected as well).
        assert_eq!(order, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn ascendants_walk_to_seed() {
        let f = run(100.0);
        let idx = f.visits.iter().position(|v| v.node == NodeId(4)).unwrap();
        let chain: Vec<NodeId> = f.ascendants(idx).map(|i| f.visits[i].node).collect();
        assert_eq!(chain, vec![NodeId(1), NodeId(0)]);
    }

    #[test]
    fn one_forest_per_seed() {
        let (g, d) = tree();
        let mut dep = Deployment::empty(7);
        dep.add_seed(NodeId(0));
        dep.add_seed(NodeId(2));
        let mut tracker = ExploreTracker::new(7);
        let forests = identify_guaranteed_paths(&g, &d, &dep, 100.0, &mut tracker);
        assert_eq!(forests.len(), 2);
        assert_eq!(forests[1].seed, NodeId(2));
        assert_eq!(forests[1].visits[0].level, 0);
    }
}
