//! Phase 3 — SC Maneuver (Alg. 1 lines 25–39 and Alg. 3, DIMD).
//!
//! Reallocates already-invested coupons toward guaranteed paths that reach
//! valuable inactive users. Quantities involved:
//!
//! * **Amelioration Index** `Ia(g(s,v_i)) = Ba / Ca`: the guaranteed path's
//!   incremental benefit over its nearest *possibly activated* ascendant's
//!   path, per unit of incremental guaranteed cost.
//! * **Deterioration Index** `Id(Δv_j(k))`: the expected benefit lost per
//!   unit of expected SC cost recovered when retrieving `k` coupons from a
//!   donor `v_j` (evaluated against the live tentative deployment).
//! * **Maneuver Gap** `β`: the bar a donor must clear. We instantiate `β`
//!   as the path's amelioration index — donating is only sensible while the
//!   donor's loss rate undercuts the path's gain rate. (The paper's
//!   `β^{m,M*}` is the marginal form of the same quantity; the constant-β
//!   simplification is documented in `DESIGN.md`.)
//!
//! A guaranteed path is *created* only when (a) the full coupon deficit
//! `δK` could be sourced from donors with `Id < β`, and (b) the resulting
//! deployment strictly improves the global redemption rate within budget —
//! otherwise every tentative operation for that path is rolled back
//! (Alg. 1 lines 37–38).

use crate::deployment::Deployment;
use crate::gpi::GpForest;
use crate::objective::{self, ObjectiveValue};
use osn_graph::{CsrGraph, NodeData, NodeId};
use osn_propagation::{BenefitEstimator, DeltaScratch, EngineCounters, SpreadEngine};

/// Summary of the maneuvering phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScmStats {
    /// Guaranteed paths that passed the precondition filter and were
    /// examined in descending-AI order.
    pub paths_examined: usize,
    /// Paths actually created (committed maneuvers).
    pub paths_created: usize,
    /// Total coupons moved by committed maneuvers.
    pub coupons_moved: u64,
    /// Spread-engine effort spent planning and committing maneuvers
    /// (tentative plans included, the initial engine build excluded — a
    /// no-op SCM phase reports zeros).
    pub eval: EngineCounters,
}

/// A scored guaranteed-path candidate.
struct Candidate {
    forest: usize,
    visit_index: usize,
    amelioration: f64,
}

/// Run the SC-Maneuver phase in place; returns the final objective and
/// statistics. Production SCM always runs on the exact analytic
/// [`SpreadEngine`] — maneuver planning is dominated by O(deg) removal
/// probes, which the engine serves from cached holder DPs, so there is
/// nothing for a sampling backend to speed up here — but the loop itself is
/// the generic [`sc_maneuver_with`], so a backend can be slotted in for
/// experiments.
pub fn sc_maneuver(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    dep: &mut Deployment,
    forests: &[GpForest],
    max_paths: usize,
) -> (ObjectiveValue, ScmStats) {
    sc_maneuver_with(graph, binv, dep, forests, max_paths, |seeds, coupons| {
        SpreadEngine::new(graph, data, seeds, coupons)
    })
}

/// The generic SC-Maneuver loop, driven through any cloneable
/// [`BenefitEstimator`] built by `make_estimator` from the phase's input
/// deployment. Tentative plans run on estimator clones kept in lockstep
/// with the tentative coupon vector; a plan is committed only when its
/// objective strictly improves within budget.
pub fn sc_maneuver_with<E, F>(
    graph: &CsrGraph,
    binv: f64,
    dep: &mut Deployment,
    forests: &[GpForest],
    max_paths: usize,
    make_estimator: F,
) -> (ObjectiveValue, ScmStats)
where
    E: BenefitEstimator + Clone,
    F: FnOnce(&[NodeId], &[u32]) -> E,
{
    let mut stats = ScmStats::default();
    // The estimator tracks the live deployment; tentative plans run on
    // clones (the exact engine's clones reuse every cached holder DP), so
    // no maneuver ever re-evaluates the spread from scratch.
    let mut engine = make_estimator(&dep.seeds, &dep.coupons);
    let mut current = objective::value_from_estimator(&engine);
    let mut scratch = DeltaScratch::default();

    let mut candidates = collect_candidates(dep, forests, &engine, &current);
    // Descending amelioration index (Alg. 1 line 26).
    candidates.sort_by(|a, b| {
        b.amelioration
            .partial_cmp(&a.amelioration)
            .expect("AI values are finite")
    });

    for cand in candidates.into_iter().take(max_paths) {
        stats.paths_examined += 1;
        let forest = &forests[cand.forest];
        // Re-check activatability against the *current* deployment: an
        // earlier committed maneuver may have funded this path's parent.
        if !parent_unfunded(forest, cand.visit_index, dep) {
            continue;
        }
        let beta = cand.amelioration;
        if let Some((tent_engine, tentative, moved)) = plan_maneuver(
            graph,
            dep,
            forest,
            cand.visit_index,
            beta,
            &engine,
            &mut scratch,
            &mut stats.eval,
        ) {
            let value = objective::value_from_estimator(&tent_engine);
            if value.rate > current.rate * (1.0 + 1e-12) && value.within_budget(binv) {
                *dep = tentative;
                engine = tent_engine;
                current = value;
                stats.paths_created += 1;
                stats.coupons_moved += moved;
            }
        }
    }
    (current, stats)
}

/// Filter GPs by the Alg. 1 line-28 preconditions and score their AIs.
fn collect_candidates<E: BenefitEstimator>(
    dep: &Deployment,
    forests: &[GpForest],
    state: &E,
    current: &ObjectiveValue,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (fi, forest) in forests.iter().enumerate() {
        for path in &forest.paths {
            if path.level == 0 {
                continue; // the seed itself is trivially "reached"
            }
            // Condition 1: guaranteed cost within the invested SC budget.
            if path.cost > current.sc_cost {
                continue;
            }
            // Condition 2: endpoint not already activatable (its GP parent
            // holds no coupons in D*).
            if !parent_unfunded(forest, path.visit_index, dep) {
                continue;
            }
            // Amelioration index against the nearest possibly activated
            // ascendant's path.
            let Some(anchor) = nearest_activated_ascendant(forest, path.visit_index, state) else {
                continue;
            };
            let base = &forest.paths[anchor];
            let dc = path.cost - base.cost;
            if dc <= 0.0 {
                continue;
            }
            let db = path.benefit - base.benefit;
            if db <= 0.0 {
                continue;
            }
            out.push(Candidate {
                forest: fi,
                visit_index: path.visit_index,
                amelioration: db / dc,
            });
        }
    }
    out
}

/// Whether the endpoint's DFS parent holds no coupons (the paper's
/// `K_p ∈ K(I*) = 0` precondition).
fn parent_unfunded(forest: &GpForest, visit_index: usize, dep: &Deployment) -> bool {
    match forest.visits[visit_index].parent {
        Some(p) => dep.coupons[forest.visits[p].node.index()] == 0,
        None => false,
    }
}

/// Nearest ascendant (by DFS parent chain) that is possibly activated under
/// the current deployment — positive activation probability or a seed.
fn nearest_activated_ascendant<E: BenefitEstimator>(
    forest: &GpForest,
    visit_index: usize,
    state: &E,
) -> Option<usize> {
    forest.ascendants(visit_index).find(|&i| {
        let node = forest.visits[i].node;
        state.active_prob()[node.index()] > 0.0 || state.is_seed(node)
    })
}

/// Try to fund the GP at `visit_index` by retrieving coupons from minimum-DI
/// donors (Alg. 3). Returns the funded tentative deployment (with its
/// engine, kept in lockstep) and the number of coupons moved, or `None`
/// when the deficit cannot be sourced under the `Id < β` gate. Engine
/// effort — whether or not the plan survives — accumulates into `eval`.
#[allow(clippy::too_many_arguments)]
fn plan_maneuver<E: BenefitEstimator + Clone>(
    graph: &CsrGraph,
    dep: &Deployment,
    forest: &GpForest,
    visit_index: usize,
    beta: f64,
    base_engine: &E,
    scratch: &mut DeltaScratch,
    eval: &mut EngineCounters,
) -> Option<(E, Deployment, u64)> {
    // Receiver targets: the GP's K̂ allocation.
    let allocation = forest.allocation(visit_index);
    let mut target = vec![0u32; dep.len()];
    for &(node, k) in &allocation {
        target[node.index()] = k;
    }
    // Deficits in GP member order (ascendants first — Alg. 3 fills from the
    // nearest activated ascendant downward).
    let mut receivers: Vec<NodeId> = Vec::new();
    let mut deficit_total = 0u64;
    for &(node, k) in &allocation {
        let have = dep.coupons[node.index()];
        if k > have {
            receivers.push(node);
            deficit_total += (k - have) as u64;
        }
    }
    if deficit_total == 0 {
        return None; // already funded; nothing to maneuver
    }

    let mut tentative = dep.clone();
    let mut engine = base_engine.clone();
    let counters_at_clone = engine.counters();
    let mut moved = 0u64;
    let mut recv_idx = 0usize;
    let outcome = loop {
        if moved >= deficit_total {
            break Some(moved);
        }
        // Advance to the next receiver still below target.
        while recv_idx < receivers.len()
            && tentative.coupons[receivers[recv_idx].index()] >= target[receivers[recv_idx].index()]
        {
            recv_idx += 1;
        }
        let Some(&receiver) = receivers.get(recv_idx) else {
            break None;
        };

        // Pick the donor with minimum deterioration index under the current
        // tentative allocation.
        let Some(donor) = best_donor(&engine, &tentative, &target, beta, scratch) else {
            break None;
        };
        tentative.remove_coupons(donor, 1);
        engine.remove_coupons(donor, 1);
        let added = tentative.add_coupons(graph, receiver, 1);
        engine.add_coupons(receiver, 1);
        if added == 0 {
            break None; // receiver saturated by out-degree; path infeasible
        }
        moved += 1;
    };
    *eval = eval.merged(&engine.counters().since(&counters_at_clone));
    outcome.map(|moved| (engine, tentative, moved))
}

/// Donor with minimal DI among nodes holding spare coupons (allocation above
/// their GP target), subject to `Id < β`. DIs are first-order removal
/// deltas against the tentative deployment's spread state — served by the
/// lockstep engine from its cached holder DPs instead of a from-scratch
/// re-evaluation per donor pick.
fn best_donor<E: BenefitEstimator>(
    engine: &E,
    tentative: &Deployment,
    target: &[u32],
    beta: f64,
    scratch: &mut DeltaScratch,
) -> Option<NodeId> {
    debug_assert_eq!(engine.coupons(), &tentative.coupons[..]);
    let mut best: Option<(f64, NodeId)> = None;
    for (i, (&k, &needed)) in tentative.coupons.iter().zip(target).enumerate() {
        if k == 0 || k <= needed {
            continue; // no spare coupons beyond the GP's own needs
        }
        let node = NodeId::from_index(i);
        let (db, dc) = engine.coupon_removal_delta(node, scratch);
        let benefit_loss = -db;
        let cost_saved = -dc;
        let di = if cost_saved > 0.0 {
            benefit_loss / cost_saved
        } else if benefit_loss <= 0.0 {
            0.0 // free retrieval: no benefit lost, no cost saved
        } else {
            f64::MAX
        };
        if di < beta {
            match best {
                Some((b, _)) if b <= di => {}
                _ => best = Some((di, node)),
            }
        }
    }
    best.map(|(_, n)| n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpi::identify_guaranteed_paths;
    use crate::id_phase::ExploreTracker;
    use osn_graph::GraphBuilder;

    /// The SCM showcase: a cheap seed whose local chain is mediocre plus a
    /// remote high-benefit user behind high-probability cheap edges.
    ///
    /// v0 → v3 (0.9) → v4 (0.95, benefit 50); v0 → v1 (0.6) → v2 (0.5).
    fn showcase() -> (CsrGraph, NodeData) {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 3, 0.9).unwrap();
        b.add_edge(0, 1, 0.6).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(3, 4, 0.95).unwrap();
        let mut sc = vec![100.0; 5];
        sc[0] = 0.1;
        (
            b.build().unwrap(),
            NodeData::new(vec![1.0, 1.0, 1.0, 1.0, 50.0], sc, vec![1.0; 5]).unwrap(),
        )
    }

    #[test]
    fn maneuver_moves_coupon_toward_high_benefit_path() {
        let (g, d) = showcase();
        // Start from a deliberately suboptimal deployment: v0 has 2 coupons
        // and v1 relays deeper into the low-benefit chain, while v3 (the
        // gateway to the benefit-50 user) holds nothing.
        let mut dep = Deployment::empty(5);
        dep.add_seed(NodeId(0));
        dep.add_coupons(&g, NodeId(0), 2);
        dep.add_coupons(&g, NodeId(1), 1);
        let before = objective::evaluate(&g, &d, &dep);

        let mut tracker = ExploreTracker::new(5);
        let forests = identify_guaranteed_paths(&g, &d, &dep, 4.0, &mut tracker);
        let (after, stats) = sc_maneuver(&g, &d, 4.0, &mut dep, &forests, 100);

        assert!(stats.paths_created >= 1, "no maneuver committed: {stats:?}");
        assert!(
            after.rate > before.rate,
            "rate must improve: {} -> {}",
            before.rate,
            after.rate
        );
        assert!(
            dep.coupons[3] >= 1,
            "v3 should now hold a coupon to reach the benefit-50 user"
        );
    }

    #[test]
    fn no_maneuver_when_deployment_is_already_good() {
        let (g, d) = showcase();
        // Already optimal shape: v0 and v3 funded.
        let mut dep = Deployment::empty(5);
        dep.add_seed(NodeId(0));
        dep.add_coupons(&g, NodeId(0), 1);
        dep.add_coupons(&g, NodeId(3), 1);
        let before = objective::evaluate(&g, &d, &dep);
        let mut tracker = ExploreTracker::new(5);
        let forests = identify_guaranteed_paths(&g, &d, &dep, 4.0, &mut tracker);
        let (after, _) = sc_maneuver(&g, &d, 4.0, &mut dep, &forests, 100);
        assert!(after.rate >= before.rate - 1e-12, "SCM must never hurt");
    }

    #[test]
    fn rate_never_decreases() {
        let (g, d) = showcase();
        for coupons in [(1u32, 0u32), (2, 1), (2, 0)] {
            let mut dep = Deployment::empty(5);
            dep.add_seed(NodeId(0));
            dep.add_coupons(&g, NodeId(0), coupons.0);
            dep.add_coupons(&g, NodeId(1), coupons.1);
            let before = objective::evaluate(&g, &d, &dep);
            let mut tracker = ExploreTracker::new(5);
            let forests = identify_guaranteed_paths(&g, &d, &dep, 4.0, &mut tracker);
            let (after, _) = sc_maneuver(&g, &d, 4.0, &mut dep, &forests, 100);
            assert!(after.rate >= before.rate - 1e-12);
            assert!(after.within_budget(4.0));
        }
    }

    #[test]
    fn empty_forests_are_a_no_op() {
        let (g, d) = showcase();
        let mut dep = Deployment::empty(5);
        dep.add_seed(NodeId(0));
        dep.add_coupons(&g, NodeId(0), 1);
        let before = objective::evaluate(&g, &d, &dep);
        let (after, stats) = sc_maneuver(&g, &d, 4.0, &mut dep, &[], 100);
        assert_eq!(stats, ScmStats::default());
        assert_eq!(after, before);
    }
}
