//! The full S3CA pipeline: ID → GPI → SCM.

use crate::deployment::Deployment;
use crate::gpi::identify_guaranteed_paths;
use crate::id_phase::{investment_deployment, investment_deployment_with, ExploreTracker};
use crate::objective::{self, ObjectiveValue};
use crate::scm::{sc_maneuver, ScmStats};
use osn_graph::{CsrGraph, NodeData};
use osn_propagation::DeploymentRef;
use osn_sketch::{SketchEstimator, SketchIndex, SketchParams};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which estimation backend drives the ID phase's greedy loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EstimatorBackend {
    /// The reference path: the exact incremental
    /// [`SpreadEngine`](osn_propagation::SpreadEngine) drives every greedy
    /// move, and the budget-milestone snapshots are re-ranked by
    /// Monte-Carlo benefit (the paper's line 24). Bit-identical to the
    /// pre-seam pipeline.
    #[default]
    Mc,
    /// Reverse-reachability sketches (`osn-sketch`): one index build up
    /// front, then every greedy probe is a postings-list walk. Costs stay
    /// exact; the benefit side carries the index's (ε, δ) error, so the
    /// final objective is re-evaluated analytically before returning.
    Sketch,
}

/// Tunables of the algorithm. The defaults run the full three-phase
/// pipeline; the phase switches exist for the `ablation_phases` bench.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct S3caConfig {
    /// Run Guaranteed-Path Identification (phase 2).
    pub enable_gpi: bool,
    /// Run SC Maneuver (phase 3; requires GPI).
    pub enable_scm: bool,
    /// Safety cap on greedy ID moves.
    pub max_id_iterations: usize,
    /// Cap on guaranteed paths examined by SCM.
    pub max_scm_paths: usize,
    /// Worlds used to re-rank the ID phase's budget-milestone snapshots by
    /// Monte-Carlo benefit (Alg. 1 line 24 picks `D*` from the candidate
    /// list under the paper's MC-estimated rate). 0 disables the re-ranking
    /// and keeps the analytic argmax — the `ablation_evaluator` setting.
    pub snapshot_worlds: usize,
    /// Seed for the snapshot-selection world sample (and the sketch index
    /// when the sketch backend is selected).
    pub rng_seed: u64,
    /// Estimation backend of the ID phase.
    pub estimator: EstimatorBackend,
    /// Storage of the snapshot-selection world cache. Representation only —
    /// carried explicitly per run so concurrent campaigns can differ
    /// without racing a process-wide default.
    pub world_storage: osn_propagation::WorldStorage,
    /// Cascade kernel of the snapshot-selection evaluator. Execution
    /// strategy only — carried explicitly per run, same reason.
    pub cascade_kernel: osn_propagation::CascadeKernel,
    /// Additive benefit-error target of the sketch index (ε of its
    /// Hoeffding guarantee). Only read when `estimator` is
    /// [`EstimatorBackend::Sketch`].
    pub sketch_epsilon: f64,
    /// Failure probability of that guarantee (δ). Sketch backend only.
    pub sketch_delta: f64,
}

impl Default for S3caConfig {
    fn default() -> Self {
        S3caConfig {
            enable_gpi: true,
            enable_scm: true,
            max_id_iterations: 200_000,
            max_scm_paths: 256,
            snapshot_worlds: 64,
            rng_seed: 0x53CA,
            estimator: EstimatorBackend::Mc,
            world_storage: osn_propagation::WorldStorage::default(),
            cascade_kernel: osn_propagation::CascadeKernel::default(),
            sketch_epsilon: SketchParams::default().epsilon,
            sketch_delta: SketchParams::default().delta,
        }
    }
}

impl S3caConfig {
    /// ID phase only — the ablation baseline quantifying what GPI + SCM buy.
    pub fn id_only() -> Self {
        S3caConfig {
            enable_gpi: false,
            enable_scm: false,
            ..Self::default()
        }
    }
}

/// Runtime/exploration instrumentation (Fig. 9, Table IV).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Telemetry {
    /// Nodes whose adjacency the algorithm expanded.
    pub explored_nodes: usize,
    /// `explored_nodes / |V|` — Fig. 9's explored ratio.
    pub explored_ratio: f64,
    /// Wall-clock microseconds per phase.
    pub id_micros: u64,
    pub gpi_micros: u64,
    pub scm_micros: u64,
    /// Greedy moves in the ID phase.
    pub id_iterations: usize,
    /// Guaranteed paths identified.
    pub gp_count: usize,
    /// Paths whose maneuvers were committed.
    pub scm_paths_created: usize,
    /// Coupons moved by committed maneuvers.
    pub scm_coupons_moved: u64,
    /// Complete from-scratch spread-engine builds across all phases.
    pub eval_full_rebuilds: u64,
    /// O(deg) incremental holder-DP extensions (the broaden fast path).
    pub eval_incremental_updates: u64,
    /// Per-holder DP rebuilds (new holders, seed-eligibility changes,
    /// coupon retrievals).
    pub eval_holder_rebuilds: u64,
    /// Lazy-greedy heap candidate re-scores in the ID phase (the
    /// exhaustive-rescan reference would pay one per candidate per
    /// iteration).
    pub eval_lazy_rescores: u64,
    /// Resident bytes of the snapshot-selection world cache (0 when the MC
    /// re-ranking was skipped) — the world-storage memory telemetry.
    pub world_cache_bytes: u64,
    /// Mean live-edge density of the sampled worlds.
    pub world_live_density: f64,
    /// Wall-clock microseconds spent sampling the world cache.
    pub world_sampling_micros: u64,
    /// World×candidate cascades the snapshot-selection evaluator ran on the
    /// bit-parallel lane kernel (0 when MC re-ranking was skipped) — how
    /// fig9 observes which cascade kernel carried a run.
    pub lane_kernel_worlds: u64,
    /// As above, on the retained scalar reference kernel.
    pub scalar_kernel_worlds: u64,
}

impl Telemetry {
    /// Total wall-clock microseconds.
    pub fn total_micros(&self) -> u64 {
        self.id_micros + self.gpi_micros + self.scm_micros
    }
}

/// Output of a full S3CA run.
#[derive(Clone, Debug)]
pub struct S3caResult {
    /// The final deployment `D*`.
    pub deployment: Deployment,
    /// Analytic objective of `D*`.
    pub objective: ObjectiveValue,
    pub telemetry: Telemetry,
}

/// Run S3CA on an instance under budget `binv`.
pub fn s3ca(graph: &CsrGraph, data: &NodeData, binv: f64, config: &S3caConfig) -> S3caResult {
    s3ca_with_snapshot_backend(graph, data, binv, config, None)
}

/// As [`s3ca`], with an optional caller-owned Monte-Carlo backend for the
/// snapshot re-ranking (line 24). A resident server passes the backend it
/// keeps per `(worlds, seed, storage, kernel)` so concurrent campaigns
/// share one world cache and its lane-block decodes zero-copy; `None`
/// samples a fresh cache exactly as [`s3ca`] always did. The caller must
/// hand in a backend sampled with `config.snapshot_worlds` worlds and
/// `config.rng_seed` — results are then bit-identical to the `None` path.
pub fn s3ca_with_snapshot_backend(
    graph: &CsrGraph,
    data: &NodeData,
    binv: f64,
    config: &S3caConfig,
    snapshot_backend: Option<&osn_propagation::McBackend>,
) -> S3caResult {
    let n = graph.node_count();
    let mut explored = ExploreTracker::new(n);
    let mut telemetry = Telemetry::default();

    // Phase 1 — Investment Deployment, under the configured backend.
    let t0 = Instant::now();
    let id = match config.estimator {
        EstimatorBackend::Mc => {
            investment_deployment(graph, data, binv, &mut explored, config.max_id_iterations)
        }
        EstimatorBackend::Sketch => {
            let params = SketchParams {
                seed: config.rng_seed,
                epsilon: config.sketch_epsilon,
                delta: config.sketch_delta,
                ..SketchParams::default()
            };
            let index = SketchIndex::build(graph, data, &params);
            investment_deployment_with(
                graph,
                data,
                binv,
                &mut explored,
                config.max_id_iterations,
                |seeds, coupons| SketchEstimator::new(graph, data, &index, seeds, coupons),
            )
        }
    };
    telemetry.id_micros = t0.elapsed().as_micros() as u64;
    telemetry.id_iterations = id.iterations;
    let mut eval = id.eval_counters;
    telemetry.eval_lazy_rescores = id.lazy_rescores;

    let mut deployment = id.deployment;
    let mut value = id.objective;

    // Line 24: pick D* among the candidate deployments by the paper's
    // Monte-Carlo-estimated redemption rate. The analytic evaluator that
    // drives the greedy loop is exact on forests but underestimates deep
    // spreads on cyclic graphs; the MC re-ranking corrects the final choice
    // at negligible cost: all feasible snapshots go to the evaluator as ONE
    // batch, so a single pass over the world cache scores the whole
    // candidate list instead of per-snapshot serial evaluations — and each
    // snapshot carries the analytic objective the incremental engine
    // computed when it was live, so nothing is re-evaluated here.
    if config.snapshot_worlds > 0 && id.snapshots.len() > 1 {
        let t_sel = Instant::now();
        let owned;
        let backend = match snapshot_backend {
            Some(shared) => shared,
            None => {
                owned = osn_propagation::McBackend::sample_with(
                    graph,
                    config.snapshot_worlds,
                    config.rng_seed,
                    config.world_storage,
                    config.cascade_kernel,
                );
                &owned
            }
        };
        telemetry.world_cache_bytes = backend.cache().resident_bytes();
        telemetry.world_live_density = backend.cache().live_density();
        telemetry.world_sampling_micros = backend.cache().sampling_micros();
        let ev = backend.evaluator(graph, data);
        let feasible: Vec<(&Deployment, ObjectiveValue)> = id
            .snapshots
            .iter()
            .filter_map(|snap| {
                snap.objective
                    .within_budget(binv)
                    .then_some((&snap.deployment, snap.objective))
            })
            .collect();
        let batch: Vec<DeploymentRef<'_>> = feasible
            .iter()
            .map(|&(snap, _)| DeploymentRef::from(snap))
            .collect();
        let scored: Vec<(f64, f64, &Deployment, ObjectiveValue)> = ev
            .simulate_batch(&batch)
            .into_iter()
            .zip(feasible)
            .map(|(stats, (snap, analytic))| {
                let cost = analytic.total_cost();
                let rate = if cost > 0.0 {
                    stats.expected_benefit / cost
                } else {
                    0.0
                };
                (rate, cost, snap, analytic)
            })
            .collect();
        let best_rate = scored.iter().fold(0.0f64, |a, &(r, ..)| a.max(r));
        // Within the MC estimation tolerance (Lemma 2's ε) rates are
        // indistinguishable; prefer the largest investment among the
        // near-best snapshots so the deployment keeps growing with the
        // budget (the paper's "total cost approximately equals Binv").
        // 2% keeps exact small-instance optima (Fig. 1's 3.1 vs 2.99 gap
        // is 3.5%) while still merging genuinely flat trajectories.
        if let Some(&(_, _, snap, analytic)) = scored
            .iter()
            .filter(|&&(r, ..)| r >= best_rate * 0.98)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite"))
        {
            deployment = snap.clone();
            value = analytic;
        }
        let (lane_worlds, scalar_worlds) = ev.kernel_world_counts();
        telemetry.lane_kernel_worlds = lane_worlds;
        telemetry.scalar_kernel_worlds = scalar_worlds;
        telemetry.id_micros += t_sel.elapsed().as_micros() as u64;
    }

    // Sketch-backed outcomes carry the index's *estimated* benefit in their
    // objectives (costs are exact in every backend, so budget filtering
    // above was sound). Downstream phases and the returned objective are
    // analytic, so re-evaluate the chosen deployment exactly once here.
    if config.estimator == EstimatorBackend::Sketch {
        value = objective::evaluate(graph, data, &deployment);
    }

    if config.enable_gpi && !deployment.seeds.is_empty() {
        // Phase 2 — Guaranteed Paths Identification.
        let t1 = Instant::now();
        let forests = identify_guaranteed_paths(graph, data, &deployment, binv, &mut explored);
        telemetry.gpi_micros = t1.elapsed().as_micros() as u64;
        telemetry.gp_count = forests.iter().map(|f| f.paths.len()).sum();

        if config.enable_scm {
            // Phase 3 — SC Maneuver.
            let t2 = Instant::now();
            let (after, stats): (ObjectiveValue, ScmStats) = sc_maneuver(
                graph,
                data,
                binv,
                &mut deployment,
                &forests,
                config.max_scm_paths,
            );
            telemetry.scm_micros = t2.elapsed().as_micros() as u64;
            telemetry.scm_paths_created = stats.paths_created;
            telemetry.scm_coupons_moved = stats.coupons_moved;
            eval = eval.merged(&stats.eval);
            value = after;
        }
    }

    telemetry.explored_nodes = explored.count();
    telemetry.explored_ratio = explored.ratio();
    telemetry.eval_full_rebuilds = eval.full_rebuilds;
    telemetry.eval_incremental_updates = eval.incremental_updates;
    telemetry.eval_holder_rebuilds = eval.holder_rebuilds;

    // The objective always reflects the returned deployment.
    debug_assert!({
        let check = objective::evaluate(graph, data, &deployment);
        (check.rate - value.rate).abs() < 1e-9
    });

    S3caResult {
        deployment,
        objective: value,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::{GraphBuilder, NodeId};

    fn showcase() -> (CsrGraph, NodeData) {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 3, 0.9).unwrap();
        b.add_edge(0, 1, 0.6).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(3, 4, 0.95).unwrap();
        let mut sc = vec![100.0; 5];
        sc[0] = 0.1;
        (
            b.build().unwrap(),
            NodeData::new(vec![1.0, 1.0, 1.0, 1.0, 50.0], sc, vec![1.0; 5]).unwrap(),
        )
    }

    #[test]
    fn full_pipeline_beats_or_matches_id_only() {
        let (g, d) = showcase();
        let full = s3ca(&g, &d, 4.0, &S3caConfig::default());
        let id_only = s3ca(&g, &d, 4.0, &S3caConfig::id_only());
        assert!(full.objective.rate >= id_only.objective.rate - 1e-12);
        assert!(full.objective.within_budget(4.0));
    }

    #[test]
    fn finds_the_high_benefit_route() {
        let (g, d) = showcase();
        let r = s3ca(&g, &d, 4.0, &S3caConfig::default());
        // The benefit-50 user sits behind v3; any good deployment funds it.
        assert!(r.deployment.coupons[3] >= 1 || r.deployment.coupons[0] >= 1);
        assert!(r.objective.rate > 1.0, "rate {}", r.objective.rate);
    }

    #[test]
    fn telemetry_is_populated() {
        let (g, d) = showcase();
        let r = s3ca(&g, &d, 4.0, &S3caConfig::default());
        assert!(r.telemetry.explored_nodes > 0);
        assert!(r.telemetry.explored_ratio > 0.0 && r.telemetry.explored_ratio <= 1.0);
        assert!(r.telemetry.id_iterations >= 1);
        assert!(r.telemetry.gp_count > 0);
    }

    #[test]
    fn zero_budget_returns_empty() {
        let (g, d) = showcase();
        let r = s3ca(&g, &d, 0.0, &S3caConfig::default());
        assert!(r.deployment.seeds.is_empty());
        assert_eq!(r.objective.rate, 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (g, d) = showcase();
        let a = s3ca(&g, &d, 4.0, &S3caConfig::default());
        let b = s3ca(&g, &d, 4.0, &S3caConfig::default());
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn sketch_backend_runs_the_full_pipeline() {
        let (g, d) = showcase();
        let cfg = S3caConfig {
            estimator: EstimatorBackend::Sketch,
            ..S3caConfig::default()
        };
        let r = s3ca(&g, &d, 4.0, &cfg);
        assert!(r.objective.within_budget(4.0));
        // The returned objective is always the analytic value of the
        // returned deployment, whatever backend drove the greedy loop.
        let check = objective::evaluate(&g, &d, &r.deployment);
        assert!((check.rate - r.objective.rate).abs() < 1e-9);
        // On this small forest-like instance the sketch-guided choice must
        // stay competitive with the reference path.
        let reference = s3ca(&g, &d, 4.0, &S3caConfig::default());
        assert!(
            r.objective.rate >= 0.5 * reference.objective.rate,
            "sketch rate {} vs reference {}",
            r.objective.rate,
            reference.objective.rate
        );
    }

    #[test]
    fn sketch_backend_is_deterministic() {
        let (g, d) = showcase();
        let cfg = S3caConfig {
            estimator: EstimatorBackend::Sketch,
            ..S3caConfig::default()
        };
        let a = s3ca(&g, &d, 4.0, &cfg);
        let b = s3ca(&g, &d, 4.0, &cfg);
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn seeds_hold_valid_ids() {
        let (g, d) = showcase();
        let r = s3ca(&g, &d, 4.0, &S3caConfig::default());
        for &s in &r.deployment.seeds {
            assert!(s.index() < g.node_count());
            assert!(s != NodeId(4) || d.seed_cost(s) <= 4.0);
        }
    }
}
