//! Resident daemon state: the loaded dataset, its re-weighted variants,
//! and every sampled Monte-Carlo backend, shared across concurrent
//! campaigns for the lifetime of the process.
//!
//! Immutability is the sharing model: graphs, node data, world caches, and
//! decoded lane blocks are all read-only after construction, so campaigns
//! borrow them zero-copy through `Arc`s — there is no per-campaign copy of
//! anything sized by the graph. The only mutable state is the two cache
//! maps (guarded by plain mutexes on the cold miss path) and counters.

use crate::admission::Admission;
use crate::batcher::ProbeBatcher;
use crate::spec::{algorithm_token, CampaignSpec, ProbeSpec, WeightChoice};
use osn_gen::seeded_rng;
use osn_gen::weights::assign_weights;
use osn_graph::{binary, GraphBuilder, ShardedOscg};
use osn_propagation::{CascadeKernel, McBackend, RedemptionReport, SimulationStats, WorldStorage};
use s3crm_bench::dataset::{instance_from_parts, load_dataset, LoadedDataset};
use s3crm_bench::scenario::run_algorithm;
use s3crm_bench::Algorithm;
use s3crm_core::{s3ca_with_snapshot_backend, Telemetry};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Cache locks recover from poisoning: a campaign that panics while
/// building a variant or backend must not brick the cache for every later
/// request (the panic itself is reported via the dispatcher's isolation;
/// an interrupted `or_insert_with` leaves no partial entry behind).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Salt separating evaluation worlds from the worlds the IM baselines
/// optimize on — identical to the `repro` runner's, so a campaign's final
/// evaluation uses the exact worlds a CLI run of the same spec would.
const EVAL_SALT: u64 = 0x0E7A_15A1;

/// Seed of the RNG that re-weights graph variants (only Trivalency draws
/// from it; the label alone must determine the variant).
const REWEIGHT_SEED: u64 = 0x0E1_6B7;

/// The daemon's shared state. One instance per process; every connection
/// thread works through the same `Arc<ServeState>`.
pub struct ServeState {
    dataset: Arc<LoadedDataset>,
    /// When the dataset file is a partitioned (v2) `.oscg`, the open
    /// sharded handle is kept for the process lifetime: campaigns run on
    /// the assembled monolithic view (with the shard plan attached for the
    /// shard-local kernels), while this handle meters shard residency under
    /// `--resident-mb` and feeds the `INFO` accounting lines.
    sharded: Option<Arc<ShardedOscg>>,
    /// Re-weighted graph variants, keyed by [`WeightChoice::label`].
    variants: Mutex<HashMap<String, Arc<LoadedDataset>>>,
    /// Resident backends keyed by `(variant, worlds, seed, storage,
    /// kernel)`. The `OnceLock` indirection keeps the map lock off the
    /// sampling path: concurrent campaigns needing *different* backends
    /// sample in parallel, while campaigns needing the *same* one block on
    /// its `OnceLock` and share the single sampled cache.
    backends: Mutex<HashMap<String, Arc<OnceLock<Arc<McBackend>>>>>,
    admission: Admission,
    /// How long a campaign may wait for an admission slot before being shed
    /// with `BUSY retry-after-ms=…`.
    admission_wait: Duration,
    batcher: ProbeBatcher,
    campaigns: AtomicU64,
    shed: AtomicU64,
}

/// One campaign's reply, split into deterministic payload and telemetry.
#[derive(Clone, Debug)]
pub struct CampaignReply {
    /// CSV header of the one-row summary.
    pub summary_header: String,
    /// The summary row (deterministic — no wall-clock columns).
    pub summary_row: String,
    /// `node,seed,coupons` rows for every node that is a seed or holds
    /// coupons, ascending by node id.
    pub deploy_rows: Vec<String>,
    /// `key=value` timing/counters line — the only nondeterministic part.
    pub telemetry: String,
}

impl CampaignReply {
    /// The byte-comparable payload: `SUMMARY`- and `DEPLOY`-prefixed lines.
    /// Identical across serial, concurrent, and in-process runs of the same
    /// spec; CI diffs these at tolerance zero.
    pub fn deterministic_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!("SUMMARY {}", self.summary_header),
            format!("SUMMARY {}", self.summary_row),
        ];
        lines.push("DEPLOY node,seed,coupons".to_string());
        lines.extend(self.deploy_rows.iter().map(|r| format!("DEPLOY {r}")));
        lines
    }

    /// Full wire reply, `OK … END` bracketed.
    pub fn wire_lines(&self) -> Vec<String> {
        let mut lines = vec![format!("OK rows={}", self.deploy_rows.len())];
        lines.extend(self.deterministic_lines());
        lines.push(format!("TELEMETRY {}", self.telemetry));
        lines.push("END".to_string());
        lines
    }

    /// Filter a wire reply (e.g. one read back by a client) down to the
    /// deterministic payload.
    pub fn deterministic_subset(lines: &[String]) -> Vec<String> {
        lines
            .iter()
            .filter(|l| l.starts_with("SUMMARY ") || l.starts_with("DEPLOY"))
            .cloned()
            .collect()
    }
}

impl ServeState {
    /// Load `path` (SNAP text or `.oscg` binary) and stand up the resident
    /// state with the given admission bound.
    pub fn open(path: &Path, max_inflight: usize) -> Result<Self, String> {
        Self::open_with_budget(path, max_inflight, None)
    }

    /// [`open`](Self::open) with an LRU shard-residency budget (bytes) for
    /// partitioned datasets. For monolithic files the budget is ignored.
    pub fn open_with_budget(
        path: &Path,
        max_inflight: usize,
        resident_budget: Option<usize>,
    ) -> Result<Self, String> {
        let effort = s3crm_bench::Effort::quick();
        let fail =
            |e: osn_graph::GraphError| format!("cannot load dataset {}: {e}", path.display());
        let is_sharded = binary::sniff_oscg_version(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            == Some(osn_graph::shard::VERSION_SHARDED);
        let (dataset, sharded) = if is_sharded {
            let sharded =
                Arc::new(ShardedOscg::open_with_budget(path, resident_budget).map_err(fail)?);
            let file = sharded.to_oscg_file().map_err(fail)?;
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("dataset")
                .to_string();
            let ds = instance_from_parts(name, file.graph, file.workload, &effort).map_err(fail)?;
            (ds, Some(sharded))
        } else {
            (load_dataset(path, &effort).map_err(fail)?, None)
        };
        Ok(ServeState {
            dataset: Arc::new(dataset),
            sharded,
            variants: Mutex::new(HashMap::new()),
            backends: Mutex::new(HashMap::new()),
            admission: Admission::new(max_inflight),
            // Generous default: campaigns on small fixtures finish in
            // milliseconds, so shedding only kicks in under real overload.
            admission_wait: Duration::from_secs(30),
            batcher: ProbeBatcher::default(),
            campaigns: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        })
    }

    /// Override how long a campaign waits for admission before being shed
    /// (`BUSY retry-after-ms=…`). Builder-style, used at daemon startup.
    pub fn with_admission_wait(mut self, wait: Duration) -> Self {
        self.admission_wait = wait;
        self
    }

    /// Campaigns shed with `BUSY` because the admission wait expired.
    pub fn shed_campaigns(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The resident instance for a weight choice, building (and caching)
    /// the re-weighted variant on first use.
    pub fn variant(&self, weights: &WeightChoice) -> Arc<LoadedDataset> {
        let model = match weights {
            WeightChoice::Dataset => return self.dataset.clone(),
            WeightChoice::Model(m) => *m,
        };
        let label = weights.label();
        let mut variants = lock(&self.variants);
        variants
            .entry(label.clone())
            .or_insert_with(|| {
                let base = &self.dataset;
                let mut builder = GraphBuilder::new(base.graph.node_count());
                for u in base.graph.nodes() {
                    for (v, p) in base.graph.ranked_out(u) {
                        builder
                            .add_edge(u.0, v.0, p)
                            .expect("copying a valid graph cannot fail");
                    }
                }
                assign_weights(&mut builder, model, &mut seeded_rng(REWEIGHT_SEED));
                let graph = builder.build().expect("re-weighted build");
                Arc::new(LoadedDataset {
                    name: format!("{}+{label}", base.name),
                    graph,
                    // Node attributes are weight-independent; keep them so
                    // variants stay comparable to the base instance.
                    data: base.data.clone(),
                    budget: base.budget,
                })
            })
            .clone()
    }

    fn backend_key(
        variant: &str,
        worlds: usize,
        seed: u64,
        storage: WorldStorage,
        kernel: CascadeKernel,
    ) -> String {
        format!("{variant}|w{worlds}|s{seed}|{storage:?}|{kernel:?}")
    }

    /// The resident backend for `(variant, worlds, seed, storage, kernel)`,
    /// sampling it on first use. Returns the key alongside so callers can
    /// address the probe batcher consistently.
    fn backend(
        &self,
        variant_label: &str,
        ds: &LoadedDataset,
        worlds: usize,
        seed: u64,
        storage: WorldStorage,
        kernel: CascadeKernel,
    ) -> (String, Arc<McBackend>) {
        let key = Self::backend_key(variant_label, worlds, seed, storage, kernel);
        let slot = {
            let mut backends = lock(&self.backends);
            backends.entry(key.clone()).or_default().clone()
        };
        let backend = slot
            .get_or_init(|| {
                Arc::new(McBackend::sample_with(
                    &ds.graph, worlds, seed, storage, kernel,
                ))
            })
            .clone();
        (key, backend)
    }

    /// Run one campaign end to end. Waits a bounded time on the admission
    /// gate while the daemon is at capacity, then sheds with a typed
    /// `BUSY retry-after-ms=…` error a client can parse and retry on. The
    /// reply's deterministic lines depend only on the spec and the dataset —
    /// never on what else is in flight.
    pub fn run_campaign(&self, spec: &CampaignSpec) -> Result<CampaignReply, String> {
        let Some(_permit) = self.admission.acquire_within(self.admission_wait) else {
            self.shed.fetch_add(1, Ordering::Relaxed);
            // Hint scaled to the configured wait: by then a slot has either
            // freed up or the daemon is persistently saturated.
            let retry_ms = self.admission_wait.as_millis().clamp(10, 2_000);
            return Err(format!("BUSY retry-after-ms={retry_ms}"));
        };
        // Chaos site: fires *after* admission so injected panics exercise
        // the permit-returns-on-unwind guarantee.
        osn_fault::point("serve.campaign.run");
        let variant_label = spec.weights.label();
        let ds = self.variant(&spec.weights);
        let binv = ds.budget * spec.budget_mult;
        let effort = spec.effort();

        let t0 = Instant::now();
        let (deployment, telemetry): (_, Option<Telemetry>) = match spec.algorithm {
            // The S3CA variants go through the snapshot-backend seam so the
            // line-24 re-ranking runs on a resident world cache instead of
            // sampling one per request (bit-identical either way).
            Algorithm::S3ca | Algorithm::S3caIdOnly => {
                let mut cfg = if spec.algorithm == Algorithm::S3ca {
                    effort.s3ca_config()
                } else {
                    effort.s3ca_id_only()
                };
                cfg.sketch_epsilon = spec.epsilon;
                cfg.sketch_delta = spec.delta;
                let (_, backend) = self.backend(
                    &variant_label,
                    &ds,
                    cfg.snapshot_worlds,
                    cfg.rng_seed,
                    spec.world_storage,
                    spec.cascade_kernel,
                );
                let r = s3ca_with_snapshot_backend(&ds.graph, &ds.data, binv, &cfg, Some(&backend));
                (r.deployment, Some(r.telemetry))
            }
            other => {
                let run =
                    run_algorithm(&ds.graph, &ds.data, binv, other, spec.limited_cap, &effort);
                (run.deployment, run.telemetry)
            }
        };

        // Final evaluation on the resident eval backend, through the probe
        // batcher so concurrent campaigns' evaluations share cache passes.
        let (eval_key, eval_backend) = self.backend(
            &variant_label,
            &ds,
            spec.eval_worlds,
            spec.seed ^ EVAL_SALT,
            spec.world_storage,
            spec.cascade_kernel,
        );
        let stats = self
            .batcher
            .submit(
                &eval_key,
                &eval_backend,
                &ds,
                deployment.seeds.clone(),
                deployment.coupons.clone(),
            )
            .map_err(|e| format!("internal: {e}"))?;
        let report = RedemptionReport::from_stats(
            &ds.graph,
            &ds.data,
            &deployment.seeds,
            &deployment.coupons,
            stats,
        );
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.campaigns.fetch_add(1, Ordering::Relaxed);

        let summary_header = "algorithm,binv,redemption_rate,expected_benefit,total_cost,\
                              seed_cost,sc_cost,seeds,coupons,avg_farthest_hop,avg_activated"
            .replace([' '], "");
        let summary_row = format!(
            "{},{binv},{},{},{},{},{},{},{},{},{}",
            algorithm_token(spec.algorithm),
            report.redemption_rate,
            report.expected_benefit,
            report.total_cost,
            report.seed_cost,
            report.sc_cost,
            deployment.seeds.len(),
            deployment.total_coupons(),
            report.avg_farthest_hop,
            report.avg_activated,
        );
        let mut is_seed = vec![false; ds.graph.node_count()];
        for s in &deployment.seeds {
            is_seed[s.index()] = true;
        }
        let deploy_rows: Vec<String> = (0..ds.graph.node_count())
            .filter(|&v| is_seed[v] || deployment.coupons[v] > 0)
            .map(|v| format!("{v},{},{}", u8::from(is_seed[v]), deployment.coupons[v]))
            .collect();
        // fig9-style per-phase telemetry rides along for S3CA campaigns.
        let telemetry = match telemetry {
            Some(t) => format!(
                "wall_ms={wall_ms} id_micros={} gpi_micros={} scm_micros={} explored_ratio={} \
                 world_cache_bytes={} lane_worlds={} scalar_worlds={}",
                t.id_micros,
                t.gpi_micros,
                t.scm_micros,
                t.explored_ratio,
                t.world_cache_bytes,
                t.lane_kernel_worlds,
                t.scalar_kernel_worlds,
            ),
            None => format!("wall_ms={wall_ms}"),
        };
        Ok(CampaignReply {
            summary_header,
            summary_row,
            deploy_rows,
            telemetry,
        })
    }

    /// Answer a `PROBE` request: one `STATS …` line.
    pub fn probe(&self, spec: &ProbeSpec) -> Result<String, String> {
        let variant_label = spec.weights.label();
        let ds = self.variant(&spec.weights);
        let n = ds.graph.node_count();
        let mut coupons = vec![0u32; n];
        for &(node, k) in &spec.coupons {
            if node.index() >= n {
                return Err(format!("coupon node {} outside graph of {n} nodes", node.0));
            }
            coupons[node.index()] = k;
        }
        if let Some(bad) = spec.seeds.iter().find(|s| s.index() >= n) {
            return Err(format!("seed {} outside graph of {n} nodes", bad.0));
        }
        let (key, backend) = self.backend(
            &variant_label,
            &ds,
            spec.worlds,
            spec.seed ^ EVAL_SALT,
            spec.world_storage,
            spec.cascade_kernel,
        );
        let stats: SimulationStats = self
            .batcher
            .submit(&key, &backend, &ds, spec.seeds.clone(), coupons)
            .map_err(|e| format!("internal: {e}"))?;
        let cascade = stats.cascade.unwrap_or_default();
        Ok(format!(
            "STATS benefit={} activated={} redeemed_sc_cost={} farthest_hop={}",
            stats.expected_benefit,
            stats.mean_activated,
            cascade.mean_redeemed_sc_cost,
            cascade.mean_farthest_hop,
        ))
    }

    /// `key=value` lines answering an `INFO` request.
    pub fn info_lines(&self) -> Vec<String> {
        let backends = lock(&self.backends);
        let mut resident_bytes = 0usize;
        let mut decoded_blocks = 0usize;
        let mut sampled = 0usize;
        for slot in backends.values() {
            if let Some(b) = slot.get() {
                sampled += 1;
                resident_bytes +=
                    b.cache().resident_bytes() as usize + b.lane_store().resident_bytes();
                decoded_blocks += b.lane_store().decoded_blocks();
            }
        }
        let (probes, batches) = self.batcher.counters();
        let mut lines = vec![
            format!("dataset={}", self.dataset.name),
            format!("nodes={}", self.dataset.graph.node_count()),
            format!("edges={}", self.dataset.graph.edge_count()),
            format!("base_budget={}", self.dataset.budget),
            format!("variants={}", lock(&self.variants).len()),
            format!("backends={sampled}"),
            format!("resident_bytes={resident_bytes}"),
            format!("decoded_lane_blocks={decoded_blocks}"),
            format!("inflight={}", self.admission.in_flight()),
            format!("inflight_cap={}", self.admission.capacity()),
            format!(
                "campaigns_served={}",
                self.campaigns.load(Ordering::Relaxed)
            ),
            format!("campaigns_shed={}", self.shed.load(Ordering::Relaxed)),
            format!("probes={probes}"),
            format!("probe_batches={batches}"),
            format!("probe_batches_failed={}", self.batcher.failed_probes()),
        ];
        if let Some(sharded) = &self.sharded {
            let (resident, bytes, loads, evictions) = sharded.residency_stats();
            lines.push(format!("shards={}", sharded.table().len()));
            lines.push(format!("resident_shards={resident}"));
            lines.push(format!("resident_shard_bytes={bytes}"));
            lines.push(format!("shard_loads={loads}"));
            lines.push(format!("shard_evictions={evictions}"));
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fixture() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../bench/fixtures/smoke_snap.txt")
    }

    #[test]
    fn identical_specs_reuse_one_resident_backend() {
        let state = ServeState::open(&fixture(), 4).expect("open");
        let spec = CampaignSpec::default();
        let a = state.run_campaign(&spec).expect("first campaign");
        let b = state.run_campaign(&spec).expect("second campaign");
        assert_eq!(a.deterministic_lines(), b.deterministic_lines());
        let backends: Vec<String> = state.info_lines();
        // One snapshot backend + one eval backend, not four.
        assert!(
            backends.contains(&"backends=2".to_string()),
            "expected 2 resident backends, info: {backends:?}"
        );
        assert!(backends.contains(&"campaigns_served=2".to_string()));
    }

    #[test]
    fn mixed_kernel_campaigns_report_identical_deployments() {
        // Kernel and storage are execution/representation choices only; two
        // campaigns differing in nothing else must reply byte-identically.
        let state = ServeState::open(&fixture(), 4).expect("open");
        let lane = CampaignSpec {
            cascade_kernel: CascadeKernel::Lane,
            world_storage: WorldStorage::Sparse,
            ..CampaignSpec::default()
        };
        let scalar = CampaignSpec {
            cascade_kernel: CascadeKernel::Scalar,
            world_storage: WorldStorage::Dense,
            ..CampaignSpec::default()
        };
        let a = state.run_campaign(&lane).expect("lane campaign");
        let b = state.run_campaign(&scalar).expect("scalar campaign");
        assert_eq!(a.deterministic_lines(), b.deterministic_lines());
    }

    #[test]
    fn reweighted_variants_are_cached_and_differ_from_the_dataset() {
        let state = ServeState::open(&fixture(), 2).expect("open");
        let uniform = WeightChoice::Model(osn_gen::weights::WeightModel::Uniform(0.05));
        let v1 = state.variant(&uniform);
        let v2 = state.variant(&uniform);
        assert!(Arc::ptr_eq(&v1, &v2), "variant rebuilt instead of cached");
        assert_eq!(v1.graph.node_count(), state.dataset.graph.node_count());
        assert_eq!(v1.graph.edge_count(), state.dataset.graph.edge_count());
        let base = state.variant(&WeightChoice::Dataset);
        assert!(Arc::ptr_eq(&base, &state.dataset));
    }

    #[test]
    fn sharded_dataset_reports_residency_and_matches_monolithic() {
        use s3crm_bench::dataset::{convert_sharded, ShardSpec};
        let dir = s3crm_tests::TempDir::new("serve-sharded");
        let sharded_path = dir.file("smoke.oscg");
        let shards =
            convert_sharded(&fixture(), &sharded_path, ShardSpec::Count(2)).expect("convert");
        assert_eq!(shards, 2);

        let sharded = ServeState::open_with_budget(&sharded_path, 2, Some(1 << 20)).expect("open");
        let info = sharded.info_lines();
        assert!(info.contains(&"shards=2".to_string()), "info: {info:?}");
        assert!(
            info.iter().any(|l| l.starts_with("resident_shard_bytes=")),
            "info: {info:?}"
        );
        assert!(
            info.iter().any(|l| l.starts_with("shard_loads=")),
            "info: {info:?}"
        );

        // Partitioning is a storage choice only: the same campaign spec on
        // the monolithic fixture must reply byte-identically.
        let monolithic = ServeState::open(&fixture(), 2).expect("open monolithic");
        let spec = CampaignSpec::default();
        let a = sharded.run_campaign(&spec).expect("sharded campaign");
        let b = monolithic.run_campaign(&spec).expect("monolithic campaign");
        assert_eq!(a.deterministic_lines(), b.deterministic_lines());
        // Monolithic files carry no shard accounting.
        assert!(
            !monolithic
                .info_lines()
                .iter()
                .any(|l| l.starts_with("shards=")),
            "monolithic info must not report shard lines"
        );
    }

    #[test]
    fn probe_matches_campaign_evaluation_backend() {
        let state = ServeState::open(&fixture(), 2).expect("open");
        let line = state
            .probe(&ProbeSpec::parse("worlds=32 seed=5 seeds=0;1 coupons=2:1").unwrap())
            .expect("probe");
        assert!(line.starts_with("STATS benefit="), "{line}");
        assert!(
            state
                .probe(&ProbeSpec::parse("seeds=4096").unwrap())
                .is_err(),
            "out-of-range seed must be rejected"
        );
    }
}
