//! TCP front end: accept loop, per-connection threads, request dispatch,
//! and the failure story around all three.
//!
//! `std::net` only — blocking I/O with one thread per connection. The
//! daemon's concurrency bound is the admission gate in [`ServeState`], not
//! the connection count, so cheap requests (`PING`, `INFO`, `PROBE`) never
//! queue behind long campaigns.
//!
//! # Hardening
//!
//! * **Socket deadlines** — every connection gets read/write timeouts
//!   ([`ServeOptions`]), so a slow or dead peer can hold a thread for at
//!   most one deadline, never forever.
//! * **Capped request lines** — requests are read through a bounded line
//!   reader; an oversized line is drained in constant memory and answered
//!   with `ERR line too long` (the connection survives). The unbounded
//!   `read_line` this replaces was a one-connection memory DoS.
//! * **Panic isolation** — request execution runs under `catch_unwind`; a
//!   panicking campaign becomes an `ERR internal …` reply, not a dead
//!   thread (and its admission permit returns via RAII).
//! * **Graceful drain** — a connection registry tracks every live
//!   connection and which are mid-request; `SHUTDOWN` stops the accept
//!   loop, lets in-flight requests finish under a drain deadline, then
//!   force-closes stragglers. [`Server::wait`] reports what happened
//!   instead of panicking.
//! * **Accept backoff** — persistent `accept(2)` errors (EMFILE, ENFILE)
//!   back off exponentially instead of hot-spinning.

use crate::spec::{CampaignSpec, ProbeSpec};
use crate::state::ServeState;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Connection-layer limits and deadlines. The admission-side knobs
/// (in-flight bound, admission wait, shed hint) live on
/// [`crate::state::ServeState`].
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Per-read socket deadline: a peer that sends nothing for this long
    /// mid-request loses the connection. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline: a peer that stops draining its replies
    /// for this long loses the connection.
    pub write_timeout: Option<Duration>,
    /// Longest accepted request line in bytes; longer lines are rejected
    /// with `ERR line too long` without buffering them.
    pub max_line_bytes: usize,
    /// How long `SHUTDOWN` waits for in-flight requests before
    /// force-closing their connections.
    pub drain_deadline: Duration,
    /// First delay of the accept-loop error backoff.
    pub accept_backoff_base: Duration,
    /// Ceiling of the accept-loop error backoff.
    pub accept_backoff_cap: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(30)),
            max_line_bytes: 64 * 1024,
            drain_deadline: Duration::from_secs(10),
            accept_backoff_base: Duration::from_millis(1),
            accept_backoff_cap: Duration::from_secs(1),
        }
    }
}

/// Capped exponential backoff for the accept loop: doubles per consecutive
/// error, resets on success. Keeps persistent `accept(2)` failures (file
/// descriptor exhaustion above all) from hot-spinning the CPU while still
/// recovering quickly from one-off blips.
#[derive(Debug)]
pub struct AcceptBackoff {
    base: Duration,
    cap: Duration,
    next: Duration,
}

impl AcceptBackoff {
    pub fn new(base: Duration, cap: Duration) -> Self {
        let base = base.max(Duration::from_micros(1));
        AcceptBackoff {
            base,
            cap: cap.max(base),
            next: base,
        }
    }

    /// The delay to sleep after one more consecutive error.
    pub fn on_error(&mut self) -> Duration {
        let delay = self.next;
        self.next = (self.next * 2).min(self.cap);
        delay
    }

    /// A successful accept resets the schedule.
    pub fn on_success(&mut self) {
        self.next = self.base;
    }
}

/// What `SHUTDOWN` draining observed; returned by [`Server::wait`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainReport {
    /// Requests still executing when the drain deadline expired; their
    /// connections were force-closed mid-request.
    pub forced_requests: usize,
    /// Idle connections closed by the drain (normal: clients that kept
    /// their connection open).
    pub closed_connections: usize,
    /// Connections whose handler threads had not exited by the end of the
    /// post-close grace window.
    pub lingering_connections: usize,
    /// The accept loop itself panicked (a daemon bug — campaign panics are
    /// isolated per-connection and never set this).
    pub accept_loop_panicked: bool,
}

impl DrainReport {
    /// True when every in-flight request finished inside the deadline and
    /// every handler thread exited.
    pub fn clean(&self) -> bool {
        self.forced_requests == 0 && self.lingering_connections == 0 && !self.accept_loop_panicked
    }
}

#[derive(Default)]
struct RegistryInner {
    /// Write-half clones used to force-close connections during drain.
    conns: HashMap<u64, TcpStream>,
    /// Connections currently executing a request (reply not yet written).
    busy: usize,
    next_id: u64,
    draining: bool,
}

/// Live-connection registry: who exists, who is mid-request, and the
/// condvar drain waits on.
#[derive(Default)]
struct Registry {
    inner: Mutex<RegistryInner>,
    cv: Condvar,
}

impl Registry {
    /// Admit a connection; `None` once draining (the stream should be
    /// dropped without service).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let mut inner = lock(&self.inner);
        if inner.draining {
            return None;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        if let Ok(clone) = stream.try_clone() {
            inner.conns.insert(id, clone);
        }
        Some(id)
    }

    fn deregister(&self, id: u64) {
        let mut inner = lock(&self.inner);
        inner.conns.remove(&id);
        self.cv.notify_all();
    }

    /// Mark the connection mid-request. `false` means the daemon is
    /// draining and the request must be refused.
    fn begin_request(&self) -> bool {
        let mut inner = lock(&self.inner);
        if inner.draining {
            return false;
        }
        inner.busy += 1;
        true
    }

    fn end_request(&self) {
        let mut inner = lock(&self.inner);
        inner.busy = inner.busy.saturating_sub(1);
        self.cv.notify_all();
    }

    /// The drain sequence, run by the accept thread after its loop exits:
    /// refuse new requests, wait for in-flight ones under `deadline`,
    /// force-close every remaining socket, then give handler threads a
    /// short grace window to unwind.
    fn drain(&self, deadline: Duration) -> DrainReport {
        let t0 = Instant::now();
        let mut inner = lock(&self.inner);
        inner.draining = true;
        while inner.busy > 0 {
            let left = deadline.saturating_sub(t0.elapsed());
            if left.is_zero() {
                break;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, left)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
        let forced_requests = inner.busy;
        let closed_connections = inner.conns.len();
        for stream in inner.conns.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Handlers observe the closed socket on their next read/write and
        // deregister on the way out; give them a bounded grace window.
        let grace = Instant::now();
        while !inner.conns.is_empty() && grace.elapsed() < Duration::from_secs(2) {
            let (guard, _) = self
                .cv
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
        DrainReport {
            forced_requests,
            closed_connections,
            lingering_connections: inner.conns.len(),
            accept_loop_panicked: false,
        }
    }
}

/// A running daemon; dropping the handle does NOT stop it — send
/// `SHUTDOWN` (or call [`Server::shutdown`]) and then [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    accept: JoinHandle<DrainReport>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the accept loop exits (after a `SHUTDOWN` request) and
    /// its drain completes. Never panics: if the accept loop itself died,
    /// the report says so.
    pub fn wait(self) -> DrainReport {
        self.accept.join().unwrap_or(DrainReport {
            accept_loop_panicked: true,
            ..DrainReport::default()
        })
    }

    /// Stop accepting: set the flag and poke the listener awake.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shutdown, self.addr);
    }
}

fn trigger_shutdown(flag: &AtomicBool, addr: SocketAddr) {
    flag.store(true, Ordering::SeqCst);
    // The accept loop blocks in `accept`; a throwaway connection wakes it
    // so it can observe the flag.
    let _ = TcpStream::connect(addr);
}

/// Bind `bind` (e.g. `127.0.0.1:0` for an ephemeral port) with default
/// [`ServeOptions`] and start accepting in a background thread.
pub fn spawn<A: ToSocketAddrs>(state: Arc<ServeState>, bind: A) -> std::io::Result<Server> {
    spawn_with(state, bind, ServeOptions::default())
}

/// [`spawn`] with explicit connection-layer options.
pub fn spawn_with<A: ToSocketAddrs>(
    state: Arc<ServeState>,
    bind: A,
    options: ServeOptions,
) -> std::io::Result<Server> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let accept = std::thread::spawn(move || accept_loop(listener, state, flag, addr, options));
    Ok(Server {
        addr,
        accept,
        shutdown,
    })
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    options: ServeOptions,
) -> DrainReport {
    let registry = Arc::new(Registry::default());
    let mut backoff = AcceptBackoff::new(options.accept_backoff_base, options.accept_backoff_cap);
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => {
                backoff.on_success();
                stream
            }
            Err(_) => {
                // EMFILE and friends tend to persist; retrying instantly
                // would hot-spin. Back off, but keep watching the shutdown
                // flag so a drain is never delayed by the backoff cap.
                let delay = backoff.on_error();
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(delay);
                continue;
            }
        };
        let Some(conn_id) = registry.register(&stream) else {
            continue; // draining: refuse without service
        };
        let state = state.clone();
        let shutdown = shutdown.clone();
        let registry_for_conn = Arc::clone(&registry);
        // Connection threads detach; they hold only Arcs, deregister via
        // RAII on every exit path (including panics), and observe the
        // forced socket shutdown during drain, so nothing joins them.
        std::thread::spawn(move || {
            let _ = handle_connection(
                stream,
                &state,
                &shutdown,
                addr,
                &registry_for_conn,
                conn_id,
                options,
            );
        });
    }
    registry.drain(options.drain_deadline)
}

/// Deregisters the connection on every exit path, panics included.
struct ConnToken<'a> {
    registry: &'a Registry,
    id: u64,
}

impl Drop for ConnToken<'_> {
    fn drop(&mut self) {
        self.registry.deregister(self.id);
    }
}

/// Marks a request in flight; `end_request` runs even if reply writing
/// fails or the dispatch path unwinds.
struct RequestToken<'a>(&'a Registry);

impl Drop for RequestToken<'_> {
    fn drop(&mut self) {
        self.0.end_request();
    }
}

/// One request line, read under the length cap.
enum RequestLine {
    Line(String),
    /// The line exceeded the cap; it was consumed (in constant memory) up
    /// to and including its newline.
    TooLong,
}

/// Read one `\n`-terminated line, buffering at most `max` bytes. Oversized
/// lines are drained chunk-by-chunk without retaining them. `Ok(None)` is
/// clean EOF before any byte of a new line.
fn read_request_line<R: BufRead>(
    reader: &mut R,
    max: usize,
) -> std::io::Result<Option<RequestLine>> {
    let mut line = Vec::new();
    let mut overflow = false;
    loop {
        osn_fault::io_point("serve.conn.read")?;
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF. A partial unterminated line still gets served — the
            // peer may have shut down its write half after the request.
            return Ok(match (overflow, line.is_empty()) {
                (true, _) => Some(RequestLine::TooLong),
                (false, true) => None,
                (false, false) => Some(RequestLine::Line(
                    String::from_utf8_lossy(&line).into_owned(),
                )),
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow && line.len() + pos <= max {
                    line.extend_from_slice(&chunk[..pos]);
                } else {
                    overflow = true;
                }
                reader.consume(pos + 1);
                return Ok(Some(if overflow {
                    RequestLine::TooLong
                } else {
                    RequestLine::Line(String::from_utf8_lossy(&line).into_owned())
                }));
            }
            None => {
                let len = chunk.len();
                if !overflow {
                    if line.len() + len > max {
                        overflow = true;
                        line = Vec::new(); // free what an attacker streamed
                    } else {
                        line.extend_from_slice(chunk);
                    }
                }
                reader.consume(len);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    state: &Arc<ServeState>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
    registry: &Registry,
    conn_id: u64,
    options: ServeOptions,
) -> std::io::Result<()> {
    let _token = ConnToken {
        registry,
        id: conn_id,
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(options.read_timeout).ok();
    stream.set_write_timeout(options.write_timeout).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let request = match read_request_line(&mut reader, options.max_line_bytes)? {
            None => return Ok(()), // clean EOF
            Some(RequestLine::TooLong) => {
                // Reject but keep the connection: the oversized line was
                // fully consumed, so the stream is still line-aligned.
                write_reply(
                    &mut writer,
                    &[format!(
                        "ERR line too long (max {} bytes)",
                        options.max_line_bytes
                    )],
                )?;
                continue;
            }
            Some(RequestLine::Line(line)) => line,
        };
        let request = request.trim();
        if request.is_empty() {
            continue;
        }
        if !registry.begin_request() {
            // Draining: refuse new work so the drain's busy count can only
            // go down; the force-close will end the connection shortly.
            write_reply(&mut writer, &["ERR draining (daemon shutting down)".into()])?;
            continue;
        }
        // The busy token must cover the reply write, not just the
        // dispatch: a drain waiting on `busy == 0` would otherwise
        // force-close the socket in the window between a campaign
        // completing and its reply reaching the wire.
        let stop = {
            let _request_token = RequestToken(registry);
            let (stop, reply) = dispatch(state, request);
            write_reply(&mut writer, &reply)?;
            stop
        };
        if stop {
            trigger_shutdown(shutdown, addr);
            return Ok(());
        }
    }
}

fn write_reply(writer: &mut TcpStream, reply: &[String]) -> std::io::Result<()> {
    osn_fault::io_point("serve.conn.write")?;
    for l in reply {
        writer.write_all(l.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()
}

/// Run `f` with panic isolation: a panic becomes an `ERR internal …` reply
/// (and the panic's cause travels in the message) instead of killing the
/// connection thread. RAII guards acquired inside `f` — the admission
/// permit, the batcher's leader reign — release during the unwind, so an
/// isolated panic cannot leak capacity or strand followers.
fn isolate<F: FnOnce() -> Result<Vec<String>, String>>(f: F) -> Vec<String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(reply)) => reply,
        Ok(Err(e)) => vec![format!("ERR {e}")],
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            vec![format!("ERR internal: {}", msg.replace('\n', " "))]
        }
    }
}

/// Answer one request line; `true` means the daemon should stop accepting.
fn dispatch(state: &Arc<ServeState>, request: &str) -> (bool, Vec<String>) {
    let (verb, body) = match request.split_once(' ') {
        Some((v, b)) => (v, b),
        None => (request, ""),
    };
    let reply = match verb {
        "PING" => vec!["PONG".to_string()],
        "INFO" => {
            let mut lines = vec!["OK".to_string()];
            lines.extend(state.info_lines());
            lines.push("END".to_string());
            lines
        }
        "CAMPAIGN" => isolate(|| {
            CampaignSpec::parse(body)
                .and_then(|s| state.run_campaign(&s))
                .map(|reply| reply.wire_lines())
        }),
        "PROBE" => isolate(|| {
            ProbeSpec::parse(body)
                .and_then(|s| state.probe(&s))
                .map(|line| vec![line])
        }),
        "SHUTDOWN" => return (true, vec!["BYE".to_string()]),
        other => vec![format!("ERR unknown request {other:?}")],
    };
    (false, reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_doubles_to_the_cap_and_resets() {
        let mut b = AcceptBackoff::new(Duration::from_millis(1), Duration::from_millis(100));
        let schedule: Vec<u128> = (0..9).map(|_| b.on_error().as_millis()).collect();
        assert_eq!(schedule, vec![1, 2, 4, 8, 16, 32, 64, 100, 100]);
        b.on_success();
        assert_eq!(
            b.on_error(),
            Duration::from_millis(1),
            "reset after success"
        );
        // Degenerate configuration: cap below base clamps to base.
        let mut tight = AcceptBackoff::new(Duration::from_millis(5), Duration::from_millis(1));
        assert_eq!(tight.on_error(), Duration::from_millis(5));
        assert_eq!(tight.on_error(), Duration::from_millis(5));
    }

    #[test]
    fn bounded_line_reader_caps_and_keeps_alignment() {
        use std::io::Cursor;
        let mut r = Cursor::new(b"short\nway too long for the cap\nnext\n".to_vec());
        let got = read_request_line(&mut r, 10).expect("read");
        assert!(matches!(got, Some(RequestLine::Line(l)) if l == "short"));
        let got = read_request_line(&mut r, 10).expect("read");
        assert!(matches!(got, Some(RequestLine::TooLong)));
        // The oversized line was consumed through its newline: the stream
        // is still aligned and the next request parses.
        let got = read_request_line(&mut r, 10).expect("read");
        assert!(matches!(got, Some(RequestLine::Line(l)) if l == "next"));
        assert!(read_request_line(&mut r, 10).expect("read").is_none());
    }

    #[test]
    fn bounded_line_reader_drains_multi_chunk_overflow_in_constant_memory() {
        use std::io::Cursor;
        // 1 MiB without a newline, then a valid request. A 64-byte BufRead
        // chunk size forces the multi-chunk drain path.
        let mut payload = vec![b'x'; 1 << 20];
        payload.extend_from_slice(b"\nPING\n");
        let mut r = BufReader::with_capacity(64, Cursor::new(payload));
        let got = read_request_line(&mut r, 1024).expect("read");
        assert!(matches!(got, Some(RequestLine::TooLong)));
        let got = read_request_line(&mut r, 1024).expect("read");
        assert!(matches!(got, Some(RequestLine::Line(l)) if l == "PING"));
    }

    #[test]
    fn bounded_line_reader_serves_exactly_max_and_unterminated_tails() {
        use std::io::Cursor;
        let mut r = Cursor::new(b"12345\ntail".to_vec());
        let got = read_request_line(&mut r, 5).expect("read");
        assert!(
            matches!(got, Some(RequestLine::Line(l)) if l == "12345"),
            "a line of exactly max bytes is served"
        );
        let got = read_request_line(&mut r, 5).expect("read");
        assert!(matches!(got, Some(RequestLine::Line(l)) if l == "tail"));
    }

    #[test]
    fn isolate_turns_panics_into_err_internal() {
        assert_eq!(isolate(|| Ok(vec!["OK".into()])), vec!["OK".to_string()]);
        assert_eq!(
            isolate(|| Err("BUSY retry-after-ms=50".into())),
            vec!["ERR BUSY retry-after-ms=50".to_string()]
        );
        let reply = isolate(|| panic!("worlds collided"));
        assert_eq!(reply.len(), 1);
        assert!(
            reply[0].starts_with("ERR internal: ") && reply[0].contains("worlds collided"),
            "{reply:?}"
        );
    }
}
