//! TCP front end: accept loop, per-connection threads, request dispatch.
//!
//! `std::net` only — blocking I/O with one thread per connection. The
//! daemon's concurrency bound is the admission gate in [`ServeState`], not
//! the connection count, so cheap requests (`PING`, `INFO`, `PROBE`) never
//! queue behind long campaigns.

use crate::spec::{CampaignSpec, ProbeSpec};
use crate::state::ServeState;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running daemon; dropping the handle does NOT stop it — send
/// `SHUTDOWN` (or call [`Server::shutdown`]) and then [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    accept: JoinHandle<()>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the accept loop exits (after a `SHUTDOWN` request).
    pub fn wait(self) {
        self.accept.join().expect("accept loop panicked");
    }

    /// Stop accepting: set the flag and poke the listener awake.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shutdown, self.addr);
    }
}

fn trigger_shutdown(flag: &AtomicBool, addr: SocketAddr) {
    flag.store(true, Ordering::SeqCst);
    // The accept loop blocks in `accept`; a throwaway connection wakes it
    // so it can observe the flag.
    let _ = TcpStream::connect(addr);
}

/// Bind `bind` (e.g. `127.0.0.1:0` for an ephemeral port) and start
/// accepting in a background thread.
pub fn spawn<A: ToSocketAddrs>(state: Arc<ServeState>, bind: A) -> std::io::Result<Server> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let accept = std::thread::spawn(move || accept_loop(listener, state, flag, addr));
    Ok(Server {
        addr,
        accept,
        shutdown,
    })
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        let shutdown = shutdown.clone();
        // Connection threads detach; they hold only Arcs and exit when the
        // peer disconnects, so nothing joins them.
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &state, &shutdown, addr);
        });
    }
}

fn handle_connection(
    stream: TcpStream,
    state: &Arc<ServeState>,
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let (stop, reply) = dispatch(state, request);
        for l in &reply {
            writer.write_all(l.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        if stop {
            trigger_shutdown(shutdown, addr);
            break;
        }
    }
    Ok(())
}

/// Answer one request line; `true` means the daemon should stop accepting.
fn dispatch(state: &Arc<ServeState>, request: &str) -> (bool, Vec<String>) {
    let (verb, body) = match request.split_once(' ') {
        Some((v, b)) => (v, b),
        None => (request, ""),
    };
    let reply = match verb {
        "PING" => vec!["PONG".to_string()],
        "INFO" => {
            let mut lines = vec!["OK".to_string()];
            lines.extend(state.info_lines());
            lines.push("END".to_string());
            lines
        }
        "CAMPAIGN" => match CampaignSpec::parse(body).and_then(|s| state.run_campaign(&s)) {
            Ok(reply) => reply.wire_lines(),
            Err(e) => vec![format!("ERR {e}")],
        },
        "PROBE" => match ProbeSpec::parse(body).and_then(|s| state.probe(&s)) {
            Ok(line) => vec![line],
            Err(e) => vec![format!("ERR {e}")],
        },
        "SHUTDOWN" => return (true, vec!["BYE".to_string()]),
        other => vec![format!("ERR unknown request {other:?}")],
    };
    (false, reply)
}
