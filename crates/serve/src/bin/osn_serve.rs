//! The `osn-serve` daemon binary.
//!
//! ```text
//! osn-serve --data PATH [--addr 127.0.0.1:7171] [--pool-size N] [--max-inflight K]
//!           [--resident-mb MB] [--admission-wait-ms MS] [--read-timeout-ms MS]
//!           [--write-timeout-ms MS] [--max-line-bytes B] [--drain-timeout-ms MS]
//! ```
//!
//! Loads the dataset, binds the address, prints one `listening on …` line
//! (scripts wait for it), and serves until a `SHUTDOWN` request arrives —
//! then drains in-flight campaigns under `--drain-timeout-ms` and reports
//! what the drain observed.
//!
//! In a build with the `fault-injection` feature, the `OSN_FAULTS`
//! environment variable installs a deterministic fault plan at startup
//! (see `osn-fault`); in default builds the variable is ignored.

use s3crm_serve::server::{self, ServeOptions};
use s3crm_serve::ServeState;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("osn-serve: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut data: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7171".to_string();
    let mut max_inflight = 32usize;
    let mut resident_budget: Option<usize> = None;
    let mut admission_wait: Option<Duration> = None;
    let mut options = ServeOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        let ms = |flag: &str, v: String| -> Duration {
            Duration::from_millis(
                v.parse()
                    .unwrap_or_else(|_| die(&format!("{flag} needs milliseconds"))),
            )
        };
        match arg.as_str() {
            "--data" => data = Some(PathBuf::from(value("--data"))),
            "--addr" => addr = value("--addr"),
            "--max-inflight" => {
                max_inflight = value("--max-inflight")
                    .parse()
                    .unwrap_or_else(|_| die("--max-inflight needs a positive integer"));
            }
            "--resident-mb" => {
                let mb: usize = value("--resident-mb")
                    .parse()
                    .unwrap_or_else(|_| die("--resident-mb needs a positive integer"));
                resident_budget = Some(mb << 20);
            }
            "--admission-wait-ms" => {
                admission_wait = Some(ms("--admission-wait-ms", value("--admission-wait-ms")));
            }
            "--read-timeout-ms" => {
                options.read_timeout = Some(ms("--read-timeout-ms", value("--read-timeout-ms")));
            }
            "--write-timeout-ms" => {
                options.write_timeout = Some(ms("--write-timeout-ms", value("--write-timeout-ms")));
            }
            "--max-line-bytes" => {
                options.max_line_bytes = value("--max-line-bytes")
                    .parse()
                    .unwrap_or_else(|_| die("--max-line-bytes needs a positive integer"));
            }
            "--drain-timeout-ms" => {
                options.drain_deadline = ms("--drain-timeout-ms", value("--drain-timeout-ms"));
            }
            "--pool-size" => {
                let n: usize = value("--pool-size")
                    .parse()
                    .unwrap_or_else(|_| die("--pool-size needs a positive integer"));
                osn_pool::init_global(n).unwrap_or_else(|_| die("global pool already running"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: osn-serve --data PATH [--addr HOST:PORT] \
                     [--pool-size N] [--max-inflight K] [--resident-mb MB] \
                     [--admission-wait-ms MS] [--read-timeout-ms MS] \
                     [--write-timeout-ms MS] [--max-line-bytes B] [--drain-timeout-ms MS]"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    match osn_fault::install_from_env() {
        Ok(true) => eprintln!("osn-serve: fault plan installed from OSN_FAULTS"),
        Ok(false) => {}
        Err(e) => die(&format!("invalid OSN_FAULTS: {e}")),
    }
    let data = data.unwrap_or_else(|| die("--data PATH is required"));
    let mut state = ServeState::open_with_budget(&data, max_inflight, resident_budget)
        .unwrap_or_else(|e| die(&e));
    if let Some(wait) = admission_wait {
        state = state.with_admission_wait(wait);
    }
    let state = Arc::new(state);
    for line in state.info_lines() {
        eprintln!("osn-serve: {line}");
    }
    let server = server::spawn_with(state, addr.as_str(), options)
        .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    println!("osn-serve listening on {}", server.addr());
    std::io::stdout().flush().ok();
    let report = server.wait();
    if report.accept_loop_panicked {
        die("accept loop panicked");
    }
    eprintln!(
        "osn-serve: shutdown complete (closed {} connections, forced {} requests, {} lingering)",
        report.closed_connections, report.forced_requests, report.lingering_connections
    );
}
