//! The `osn-serve` daemon binary.
//!
//! ```text
//! osn-serve --data PATH [--addr 127.0.0.1:7171] [--pool-size N] [--max-inflight K]
//!           [--resident-mb MB]
//! ```
//!
//! Loads the dataset, binds the address, prints one `listening on …` line
//! (scripts wait for it), and serves until a `SHUTDOWN` request arrives.

use s3crm_serve::{server, ServeState};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

fn die(msg: &str) -> ! {
    eprintln!("osn-serve: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut data: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7171".to_string();
    let mut max_inflight = 32usize;
    let mut resident_budget: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--data" => data = Some(PathBuf::from(value("--data"))),
            "--addr" => addr = value("--addr"),
            "--max-inflight" => {
                max_inflight = value("--max-inflight")
                    .parse()
                    .unwrap_or_else(|_| die("--max-inflight needs a positive integer"));
            }
            "--resident-mb" => {
                let mb: usize = value("--resident-mb")
                    .parse()
                    .unwrap_or_else(|_| die("--resident-mb needs a positive integer"));
                resident_budget = Some(mb << 20);
            }
            "--pool-size" => {
                let n: usize = value("--pool-size")
                    .parse()
                    .unwrap_or_else(|_| die("--pool-size needs a positive integer"));
                osn_pool::init_global(n).unwrap_or_else(|_| die("global pool already running"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: osn-serve --data PATH [--addr HOST:PORT] \
                     [--pool-size N] [--max-inflight K] [--resident-mb MB]"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let data = data.unwrap_or_else(|| die("--data PATH is required"));
    let state = Arc::new(
        ServeState::open_with_budget(&data, max_inflight, resident_budget)
            .unwrap_or_else(|e| die(&e)),
    );
    for line in state.info_lines() {
        eprintln!("osn-serve: {line}");
    }
    let server = server::spawn(state, addr.as_str())
        .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    println!("osn-serve listening on {}", server.addr());
    std::io::stdout().flush().ok();
    server.wait();
    eprintln!("osn-serve: shutdown complete");
}
