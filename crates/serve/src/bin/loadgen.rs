//! Heavy-traffic load generator for `osn-serve`.
//!
//! ```text
//! loadgen --data PATH --serial --campaigns N [--out DIR]
//! loadgen --addr HOST:PORT --campaigns N --threads T [--out DIR]
//! loadgen --addr HOST:PORT --chaos --data PATH [--campaigns N] [--threads T]
//! loadgen --addr HOST:PORT --shutdown
//! ```
//!
//! Campaign `i`'s spec is the deterministic [`spec_for`] mix (algorithms ×
//! budgets × kernels × storages), identical in both modes, so the files a
//! concurrent client run writes must be byte-identical to the serial
//! reference's — `repro csvdiff A B 0` per pair is the CI check. Client
//! mode prints a throughput/latency summary line (the heavy-traffic bench
//! trajectory point).
//!
//! `--chaos` is the fault-tolerance benchmark: it drives the same campaign
//! mix through the retrying client (jittered backoff on `BUSY`, transport
//! drops, and panic-isolated internal errors — typically against a daemon
//! running with an `OSN_FAULTS` plan), computes the serial in-process
//! reference from `--data`, and demands every successful reply be
//! **byte-identical** to it. It reports goodput and retry counts and exits
//! nonzero on any wrong answer or exhausted retry budget: faults may cost
//! throughput, never correctness.

use s3crm_serve::client::{RetryPolicy, RetryingClient};
use s3crm_serve::{CampaignSpec, Client, ServeState};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn die(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}

/// The deterministic campaign mix: cycles algorithms, budget multipliers,
/// world storages, and cascade kernels so a run of ≥ 12 campaigns exercises
/// every axis, including mixed kernels in flight at once.
fn spec_for(i: usize) -> CampaignSpec {
    use osn_propagation::{CascadeKernel, WorldStorage};
    use s3crm_bench::Algorithm;
    let algorithms = [
        Algorithm::S3ca,
        Algorithm::ImU,
        Algorithm::PmL,
        Algorithm::ImS,
    ];
    let budgets = [1.0, 0.5, 2.0];
    CampaignSpec {
        algorithm: algorithms[i % algorithms.len()],
        budget_mult: budgets[i % budgets.len()],
        world_storage: if (i / 2).is_multiple_of(2) {
            WorldStorage::Sparse
        } else {
            WorldStorage::Dense
        },
        cascade_kernel: if i.is_multiple_of(2) {
            CascadeKernel::Lane
        } else {
            CascadeKernel::Scalar
        },
        ..CampaignSpec::default()
    }
}

fn write_reply(out: &Option<PathBuf>, i: usize, lines: &[String]) {
    let Some(dir) = out else { return };
    let path = dir.join(format!("campaign_{i:04}.csv"));
    let body = lines.join("\n") + "\n";
    std::fs::write(&path, body)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
}

fn main() {
    let mut data: Option<PathBuf> = None;
    let mut addr: Option<String> = None;
    let mut serial = false;
    let mut chaos = false;
    let mut shutdown = false;
    let mut campaigns = 64usize;
    let mut threads = 16usize;
    let mut out: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--data" => data = Some(PathBuf::from(value("--data"))),
            "--addr" => addr = Some(value("--addr")),
            "--serial" => serial = true,
            "--chaos" => chaos = true,
            "--shutdown" => shutdown = true,
            "--campaigns" => {
                campaigns = value("--campaigns")
                    .parse()
                    .unwrap_or_else(|_| die("--campaigns needs a positive integer"));
            }
            "--threads" => {
                threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| die("--threads needs a positive integer"));
            }
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen --data PATH --serial [--campaigns N] [--out DIR]\n\
                     \x20      loadgen --addr HOST:PORT [--campaigns N] [--threads T] [--out DIR]\n\
                     \x20      loadgen --addr HOST:PORT --chaos --data PATH [--campaigns N] [--threads T]\n\
                     \x20      loadgen --addr HOST:PORT --shutdown"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    if let Some(dir) = &out {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
    }
    if shutdown {
        let addr = addr.unwrap_or_else(|| die("--shutdown needs --addr HOST:PORT"));
        let mut client =
            Client::connect(addr.as_str()).unwrap_or_else(|e| die(&format!("connect: {e}")));
        client
            .shutdown()
            .unwrap_or_else(|e| die(&format!("shutdown: {e}")));
        println!("loadgen: daemon at {addr} acknowledged shutdown");
    } else if chaos {
        run_chaos(addr, data, campaigns, threads.max(1), &out);
    } else if serial {
        run_serial(data, campaigns, &out);
    } else {
        run_concurrent(addr, campaigns, threads.max(1), &out);
    }
}

/// The reference path: the same `ServeState::run_campaign` code the daemon
/// executes, in-process and one campaign at a time.
fn run_serial(data: Option<PathBuf>, campaigns: usize, out: &Option<PathBuf>) {
    let data = data.unwrap_or_else(|| die("--serial needs --data PATH"));
    let state = ServeState::open(&data, 1).unwrap_or_else(|e| die(&e));
    let t0 = Instant::now();
    for i in 0..campaigns {
        let reply = state
            .run_campaign(&spec_for(i))
            .unwrap_or_else(|e| die(&format!("campaign {i}: {e}")));
        write_reply(out, i, &reply.deterministic_lines());
    }
    println!(
        "loadgen: {campaigns} serial campaigns in {:.2}s",
        t0.elapsed().as_secs_f64()
    );
}

/// Chaos mode: the same campaign mix through the retrying client, against
/// a (typically fault-injecting) daemon, verified byte-for-byte against
/// the in-process serial reference. Prints a goodput summary and exits
/// nonzero on any wrong answer or exhausted retry budget.
fn run_chaos(
    addr: Option<String>,
    data: Option<PathBuf>,
    campaigns: usize,
    threads: usize,
    out: &Option<PathBuf>,
) {
    use std::net::ToSocketAddrs;
    let addr = addr.unwrap_or_else(|| die("--chaos needs --addr HOST:PORT"));
    let data = data.unwrap_or_else(|| die("--chaos needs --data PATH for the serial reference"));
    let sock = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| die(&format!("cannot resolve {addr}")));

    // The ground truth: every campaign's deterministic reply, computed
    // in-process with no daemon (and no faults) involved.
    let state = ServeState::open(&data, 1).unwrap_or_else(|e| die(&e));
    let reference: Vec<Vec<String>> = (0..campaigns)
        .map(|i| {
            state
                .run_campaign(&spec_for(i))
                .unwrap_or_else(|e| die(&format!("reference campaign {i}: {e}")))
                .deterministic_lines()
        })
        .collect();

    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(campaigns));
    let failures = AtomicUsize::new(0);
    let mismatches = AtomicUsize::new(0);
    let retries = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (next, latencies, failures, mismatches, retries, reference, out) = (
                &next,
                &latencies,
                &failures,
                &mismatches,
                &retries,
                &reference,
                out,
            );
            s.spawn(move || {
                let mut client = RetryingClient::new(sock, RetryPolicy::default(), t as u64);
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= campaigns {
                        break;
                    }
                    let started = Instant::now();
                    match client.campaign(&spec_for(i)) {
                        Ok(lines) => {
                            let ms = started.elapsed().as_secs_f64() * 1e3;
                            if lines == reference[i] {
                                latencies.lock().expect("latency lock").push(ms);
                                write_reply(out, i, &lines);
                            } else {
                                eprintln!("loadgen: campaign {i} diverged from the reference");
                                mismatches.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        Err(e) => {
                            eprintln!("loadgen: campaign {i} failed after retries: {e}");
                            failures.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                retries.fetch_add(client.retries(), Ordering::SeqCst);
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut lat = latencies.into_inner().expect("latency lock");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let failed = failures.load(Ordering::SeqCst);
    let wrong = mismatches.load(Ordering::SeqCst);
    let retried = retries.load(Ordering::SeqCst);
    let ok = lat.len();
    if wrong > 0 {
        eprintln!("loadgen: CHAOS FAILURE — {wrong} replies diverged from the serial reference");
        std::process::exit(1);
    }
    if failed > 0 || ok == 0 {
        eprintln!("loadgen: {failed} of {campaigns} campaigns exhausted their retry budget");
        std::process::exit(1);
    }
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p).round() as usize];
    println!(
        "loadgen: chaos {ok}/{campaigns} campaigns over {threads} threads in {wall:.2}s — \
         goodput {:.1} campaigns/s, {retried} retries, p50 {:.1} ms, p99 {:.1} ms, \
         0 divergent replies",
        ok as f64 / wall,
        pct(0.50),
        pct(0.99),
    );
    std::io::stdout().flush().ok();
}

fn run_concurrent(addr: Option<String>, campaigns: usize, threads: usize, out: &Option<PathBuf>) {
    let addr = addr.unwrap_or_else(|| die("client mode needs --addr HOST:PORT (or use --serial)"));
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(campaigns));
    let failures = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let (addr, next, latencies, failures) = (&addr, &next, &latencies, &failures);
            s.spawn(move || {
                let mut client = match Client::connect(addr.as_str()) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("loadgen: cannot connect to {addr}: {e}");
                        failures.fetch_add(campaigns, Ordering::SeqCst);
                        return;
                    }
                };
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= campaigns {
                        break;
                    }
                    let t = Instant::now();
                    match client.campaign(&spec_for(i)) {
                        Ok(Ok(lines)) => {
                            let ms = t.elapsed().as_secs_f64() * 1e3;
                            latencies.lock().expect("latency lock").push(ms);
                            write_reply(out, i, &lines);
                        }
                        Ok(Err(msg)) => {
                            eprintln!("loadgen: campaign {i} rejected: {msg}");
                            failures.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => {
                            eprintln!("loadgen: campaign {i} transport error: {e}");
                            failures.fetch_add(1, Ordering::SeqCst);
                            break;
                        }
                    }
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut lat = latencies.into_inner().expect("latency lock");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let failed = failures.load(Ordering::SeqCst);
    if lat.is_empty() || failed > 0 {
        eprintln!("loadgen: {failed} of {campaigns} campaigns failed");
        std::process::exit(1);
    }
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p).round() as usize];
    println!(
        "loadgen: {campaigns} campaigns over {threads} threads in {wall:.2}s — \
         {:.1} campaigns/s, p50 {:.1} ms, p99 {:.1} ms",
        campaigns as f64 / wall,
        pct(0.50),
        pct(0.99),
    );
    std::io::stdout().flush().ok();
}
