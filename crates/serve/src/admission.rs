//! Bounded admission of in-flight campaigns.
//!
//! The daemon accepts any number of connections, but only `max` campaigns
//! run at once — the rest wait in [`Admission::acquire_within`] for a
//! bounded time and are then *shed* with a typed `BUSY` error instead of
//! queueing unboundedly. This keeps a burst of requests from
//! oversubscribing the shared `osn-pool` (each campaign already fans out
//! across its workers), bounds resident scratch memory, and bounds how
//! long any client can be parked behind a stuck peer.
//!
//! Permits are RAII: [`Permit`] releases its slot on drop, **including
//! when the holding thread panics** — a campaign that dies mid-run can
//! never leak capacity. The release path recovers from mutex poisoning for
//! the same reason (a panicking peer must not poison the gate for everyone
//! else); the counter itself stays consistent because every mutation is a
//! balanced increment/decrement pair.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A counting semaphore over `Mutex` + `Condvar` (no external deps).
pub struct Admission {
    max: usize,
    inflight: Mutex<usize>,
    cv: Condvar,
}

impl Admission {
    /// Gate admitting at most `max` concurrent holders.
    pub fn new(max: usize) -> Self {
        assert!(max > 0, "admission capacity must be positive");
        Admission {
            max,
            inflight: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Block until a slot is free, then occupy it for the permit's
    /// lifetime. Unbounded — the load-shedding path is
    /// [`acquire_within`](Self::acquire_within).
    pub fn acquire(&self) -> Permit<'_> {
        let mut n = lock(&self.inflight);
        while *n >= self.max {
            n = self.cv.wait(n).unwrap_or_else(PoisonError::into_inner);
        }
        *n += 1;
        Permit(self)
    }

    /// Wait at most `timeout` for a slot; `None` means the caller should
    /// shed the request (reply `BUSY`) instead of queueing further.
    pub fn acquire_within(&self, timeout: Duration) -> Option<Permit<'_>> {
        let deadline = Instant::now() + timeout;
        let mut n = lock(&self.inflight);
        while *n >= self.max {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _timed_out) = self
                .cv
                .wait_timeout(n, left)
                .unwrap_or_else(PoisonError::into_inner);
            n = guard;
        }
        *n += 1;
        Some(Permit(self))
    }

    /// Currently admitted campaigns.
    pub fn in_flight(&self) -> usize {
        *lock(&self.inflight)
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.max
    }
}

/// RAII permit; dropping it — normally or during a panic unwind — releases
/// the slot and wakes one waiter.
pub struct Permit<'a>(&'a Admission);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut n = lock(&self.0.inflight);
        *n -= 1;
        self.0.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn never_admits_more_than_capacity() {
        let gate = Admission::new(3);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    let _permit = gate.acquire();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "admission gate leaked");
        assert_eq!(gate.in_flight(), 0, "permits not all released");
    }

    /// The regression the fault harness exists to catch: a campaign that
    /// panics while admitted must return its permit (RAII drop during
    /// unwind), and the gate must keep working afterwards — no leaked
    /// capacity, no poisoned lock.
    #[test]
    fn panic_while_holding_a_permit_returns_it() {
        let gate = Admission::new(1);
        let panicked = std::thread::scope(|s| {
            s.spawn(|| {
                let _permit = gate.acquire();
                panic!("campaign died mid-run");
            })
            .join()
        });
        assert!(panicked.is_err(), "the campaign thread must have panicked");
        assert_eq!(gate.in_flight(), 0, "panic leaked the permit");
        // The gate still admits: a bounded acquire succeeds immediately.
        let permit = gate
            .acquire_within(Duration::from_millis(100))
            .expect("slot is free after the panic");
        assert_eq!(gate.in_flight(), 1);
        drop(permit);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn bounded_acquire_sheds_when_saturated_and_admits_when_freed() {
        let gate = Admission::new(1);
        let held = gate.acquire();
        // Saturated: a bounded wait returns None in bounded time.
        let t0 = Instant::now();
        assert!(gate.acquire_within(Duration::from_millis(30)).is_none());
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "returned before the wait bound"
        );
        // A waiter parked inside the bound is admitted once the permit
        // frees up.
        std::thread::scope(|s| {
            let waiter = s.spawn(|| gate.acquire_within(Duration::from_secs(5)).is_some());
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
            assert!(waiter.join().unwrap(), "freed slot did not admit waiter");
        });
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_timeout_is_try_acquire() {
        let gate = Admission::new(1);
        let held = gate.acquire();
        assert!(gate.acquire_within(Duration::ZERO).is_none());
        drop(held);
        assert!(gate.acquire_within(Duration::ZERO).is_some());
    }
}
