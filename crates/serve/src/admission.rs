//! Bounded admission of in-flight campaigns.
//!
//! The daemon accepts any number of connections, but only `max` campaigns
//! run at once — the rest block in [`Admission::acquire`] until a permit
//! frees up. This keeps a burst of requests from oversubscribing the shared
//! `osn-pool` (each campaign already fans out across its workers) and
//! bounds resident scratch memory.

use std::sync::{Condvar, Mutex};

/// A counting semaphore over `Mutex` + `Condvar` (no external deps).
pub struct Admission {
    max: usize,
    inflight: Mutex<usize>,
    cv: Condvar,
}

impl Admission {
    /// Gate admitting at most `max` concurrent holders.
    pub fn new(max: usize) -> Self {
        assert!(max > 0, "admission capacity must be positive");
        Admission {
            max,
            inflight: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Block until a slot is free, then occupy it for the permit's lifetime.
    pub fn acquire(&self) -> Permit<'_> {
        let mut n = self.inflight.lock().expect("admission lock");
        while *n >= self.max {
            n = self.cv.wait(n).expect("admission wait");
        }
        *n += 1;
        Permit(self)
    }

    /// Currently admitted campaigns.
    pub fn in_flight(&self) -> usize {
        *self.inflight.lock().expect("admission lock")
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.max
    }
}

/// RAII permit; dropping it releases the slot and wakes one waiter.
pub struct Permit<'a>(&'a Admission);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut n = self.0.inflight.lock().expect("admission lock");
        *n -= 1;
        self.0.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn never_admits_more_than_capacity() {
        let gate = Admission::new(3);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    let _permit = gate.acquire();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "admission gate leaked");
        assert_eq!(gate.in_flight(), 0, "permits not all released");
    }
}
