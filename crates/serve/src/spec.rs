//! Campaign and probe request specifications: the `key=value` codec the
//! wire protocol, the load generator, and the serial reference path all
//! share. A spec round-trips through [`CampaignSpec::to_line`] /
//! [`CampaignSpec::parse`] unchanged, so a client can replay the exact
//! request a reply was produced from.

use osn_gen::weights::WeightModel;
use osn_graph::NodeId;
use osn_propagation::{CascadeKernel, WorldStorage};
use s3crm_bench::{Algorithm, Effort};
use s3crm_core::EstimatorBackend;

/// Which edge probabilities a campaign runs on.
#[derive(Clone, Copy, Debug)]
pub enum WeightChoice {
    /// The probabilities the dataset file carries (or the loader's
    /// 1/in-degree default for weightless text files).
    Dataset,
    /// Re-weight the dataset's topology under a synthetic model; the
    /// daemon caches one resident re-weighted variant per label.
    Model(WeightModel),
}

impl WeightChoice {
    /// Stable token used on the wire and as the resident-variant cache key.
    pub fn label(&self) -> String {
        match self {
            WeightChoice::Dataset => "data".to_string(),
            WeightChoice::Model(WeightModel::InverseInDegree) => "invdeg".to_string(),
            WeightChoice::Model(WeightModel::Uniform(p)) => format!("uniform:{p}"),
            WeightChoice::Model(WeightModel::Trivalency(_)) => "trivalency".to_string(),
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        if let Some(p) = s.strip_prefix("uniform:") {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("weights uniform:<p> needs a number, got {p:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("uniform edge probability {p} outside [0, 1]"));
            }
            return Ok(WeightChoice::Model(WeightModel::Uniform(p)));
        }
        match s {
            "data" => Ok(WeightChoice::Dataset),
            "invdeg" => Ok(WeightChoice::Model(WeightModel::InverseInDegree)),
            "trivalency" => Ok(WeightChoice::Model(WeightModel::trivalency_default())),
            other => Err(format!(
                "unknown weights {other:?} (data|invdeg|uniform:<p>|trivalency)"
            )),
        }
    }
}

/// One campaign request: everything that determines the deployment.
#[derive(Clone, Copy, Debug)]
pub struct CampaignSpec {
    /// Seed-selection / allocation algorithm.
    pub algorithm: Algorithm,
    /// Multiplier on the dataset's base budget (`Binv = budget × base`).
    pub budget_mult: f64,
    /// Coupon cap for the limited-strategy baselines.
    pub limited_cap: u32,
    /// ID-phase estimation backend for the S3CA variants.
    pub estimator: EstimatorBackend,
    /// Sketch ε (additive benefit-error target; sketch estimator only).
    pub epsilon: f64,
    /// Sketch δ (failure probability; sketch estimator only).
    pub delta: f64,
    /// World-cache representation for every cache this campaign touches.
    pub world_storage: WorldStorage,
    /// Cascade kernel for every evaluator this campaign stands up.
    pub cascade_kernel: CascadeKernel,
    /// Worlds in the final-evaluation cache.
    pub eval_worlds: usize,
    /// Worlds inside the IM-family baselines' greedy selection.
    pub im_worlds: usize,
    /// Master seed (same derivation salts as the `repro` harness).
    pub seed: u64,
    /// Edge-probability variant.
    pub weights: WeightChoice,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        let quick = Effort::quick();
        CampaignSpec {
            algorithm: Algorithm::S3ca,
            budget_mult: 1.0,
            limited_cap: Algorithm::default_limited_cap(),
            estimator: EstimatorBackend::Mc,
            epsilon: 0.1,
            delta: 0.1,
            world_storage: WorldStorage::default(),
            cascade_kernel: CascadeKernel::default(),
            eval_worlds: 64,
            im_worlds: 8,
            seed: quick.seed,
            weights: WeightChoice::Dataset,
        }
    }
}

/// Wire token for an algorithm.
pub fn algorithm_token(a: Algorithm) -> &'static str {
    match a {
        Algorithm::S3ca => "s3ca",
        Algorithm::S3caIdOnly => "s3ca-id",
        Algorithm::ImU => "im-u",
        Algorithm::ImL => "im-l",
        Algorithm::PmU => "pm-u",
        Algorithm::PmL => "pm-l",
        Algorithm::ImS => "im-s",
        Algorithm::Random => "random",
    }
}

fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    Ok(match s {
        "s3ca" => Algorithm::S3ca,
        "s3ca-id" => Algorithm::S3caIdOnly,
        "im-u" => Algorithm::ImU,
        "im-l" => Algorithm::ImL,
        "pm-u" => Algorithm::PmU,
        "pm-l" => Algorithm::PmL,
        "im-s" => Algorithm::ImS,
        "random" => Algorithm::Random,
        other => return Err(format!("unknown algo {other:?}")),
    })
}

fn parse_storage(s: &str) -> Result<WorldStorage, String> {
    match s {
        "sparse" => Ok(WorldStorage::Sparse),
        "dense" => Ok(WorldStorage::Dense),
        other => Err(format!("storage must be sparse|dense, got {other:?}")),
    }
}

fn parse_kernel(s: &str) -> Result<CascadeKernel, String> {
    match s {
        "lane" => Ok(CascadeKernel::Lane),
        "scalar" => Ok(CascadeKernel::Scalar),
        other => Err(format!("kernel must be lane|scalar, got {other:?}")),
    }
}

fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {key}={v:?}"))
}

impl CampaignSpec {
    /// Parse the body of a `CAMPAIGN` request (everything after the verb).
    /// Unknown keys are rejected so typos fail loudly instead of silently
    /// running a default campaign.
    pub fn parse(body: &str) -> Result<Self, String> {
        let mut spec = CampaignSpec::default();
        for pair in body.split_whitespace() {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
            match k {
                "algo" => spec.algorithm = parse_algorithm(v)?,
                "budget" => spec.budget_mult = num(k, v)?,
                "cap" => spec.limited_cap = num(k, v)?,
                "estimator" => {
                    spec.estimator = match v {
                        "mc" => EstimatorBackend::Mc,
                        "sketch" => EstimatorBackend::Sketch,
                        other => return Err(format!("estimator must be mc|sketch, got {other:?}")),
                    }
                }
                "epsilon" => spec.epsilon = num(k, v)?,
                "delta" => spec.delta = num(k, v)?,
                "storage" => spec.world_storage = parse_storage(v)?,
                "kernel" => spec.cascade_kernel = parse_kernel(v)?,
                "eval_worlds" => spec.eval_worlds = num(k, v)?,
                "im_worlds" => spec.im_worlds = num(k, v)?,
                "seed" => spec.seed = num(k, v)?,
                "weights" => spec.weights = WeightChoice::parse(v)?,
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if !(spec.budget_mult.is_finite() && spec.budget_mult > 0.0) {
            return Err(format!(
                "budget multiplier {} must be positive",
                spec.budget_mult
            ));
        }
        if spec.eval_worlds == 0 {
            return Err("eval_worlds must be positive".to_string());
        }
        Ok(spec)
    }

    /// Canonical wire form; [`parse`](Self::parse) of this line reproduces
    /// the spec.
    pub fn to_line(&self) -> String {
        format!(
            "algo={} budget={} cap={} estimator={} epsilon={} delta={} storage={} kernel={} \
             eval_worlds={} im_worlds={} seed={} weights={}",
            algorithm_token(self.algorithm),
            self.budget_mult,
            self.limited_cap,
            match self.estimator {
                EstimatorBackend::Mc => "mc",
                EstimatorBackend::Sketch => "sketch",
            },
            self.epsilon,
            self.delta,
            match self.world_storage {
                WorldStorage::Sparse => "sparse",
                WorldStorage::Dense => "dense",
            },
            match self.cascade_kernel {
                CascadeKernel::Lane => "lane",
                CascadeKernel::Scalar => "scalar",
            },
            self.eval_worlds,
            self.im_worlds,
            self.seed,
            self.weights.label(),
        )
    }

    /// The [`Effort`] this spec implies — the same struct the `repro`
    /// harness threads everywhere, so campaign and CLI runs share every
    /// seed-derivation salt.
    pub fn effort(&self) -> Effort {
        let mut e = Effort::quick();
        e.eval_worlds = self.eval_worlds;
        e.im_worlds = self.im_worlds;
        e.seed = self.seed;
        e.estimator = self.estimator;
        e.world_storage = self.world_storage;
        e.cascade_kernel = self.cascade_kernel;
        e
    }
}

/// One `PROBE` request: evaluate an explicit deployment on a resident
/// evaluation backend.
#[derive(Clone, Debug)]
pub struct ProbeSpec {
    pub worlds: usize,
    pub seed: u64,
    pub world_storage: WorldStorage,
    pub cascade_kernel: CascadeKernel,
    pub weights: WeightChoice,
    pub seeds: Vec<NodeId>,
    pub coupons: Vec<(NodeId, u32)>,
}

impl ProbeSpec {
    /// Parse the body of a `PROBE` request. `seeds` is a `;`-separated node
    /// list, `coupons` a `;`-separated `node:count` list.
    pub fn parse(body: &str) -> Result<Self, String> {
        let mut spec = ProbeSpec {
            worlds: 64,
            seed: 42,
            world_storage: WorldStorage::default(),
            cascade_kernel: CascadeKernel::default(),
            weights: WeightChoice::Dataset,
            seeds: Vec::new(),
            coupons: Vec::new(),
        };
        for pair in body.split_whitespace() {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
            match k {
                "worlds" => spec.worlds = num(k, v)?,
                "seed" => spec.seed = num(k, v)?,
                "storage" => spec.world_storage = parse_storage(v)?,
                "kernel" => spec.cascade_kernel = parse_kernel(v)?,
                "weights" => spec.weights = WeightChoice::parse(v)?,
                "seeds" => {
                    spec.seeds = v
                        .split(';')
                        .filter(|t| !t.is_empty())
                        .map(|t| num::<u32>("seeds", t).map(NodeId))
                        .collect::<Result<_, _>>()?;
                }
                "coupons" => {
                    spec.coupons = v
                        .split(';')
                        .filter(|t| !t.is_empty())
                        .map(|t| {
                            let (node, count) = t
                                .split_once(':')
                                .ok_or_else(|| format!("coupons wants node:count, got {t:?}"))?;
                            Ok((NodeId(num::<u32>("coupons", node)?), num("coupons", count)?))
                        })
                        .collect::<Result<_, String>>()?;
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if spec.worlds == 0 {
            return Err("worlds must be positive".to_string());
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_spec_round_trips_through_the_wire_form() {
        let mut spec = CampaignSpec {
            algorithm: Algorithm::PmL,
            budget_mult: 2.5,
            limited_cap: 8,
            estimator: EstimatorBackend::Sketch,
            epsilon: 0.05,
            delta: 0.2,
            world_storage: WorldStorage::Dense,
            cascade_kernel: CascadeKernel::Scalar,
            eval_worlds: 96,
            im_worlds: 12,
            seed: 77,
            weights: WeightChoice::Model(WeightModel::Uniform(0.25)),
        };
        let parsed = CampaignSpec::parse(&spec.to_line()).expect("round trip");
        assert_eq!(parsed.to_line(), spec.to_line());
        spec.weights = WeightChoice::Dataset;
        let parsed = CampaignSpec::parse(&spec.to_line()).expect("round trip");
        assert_eq!(parsed.to_line(), spec.to_line());
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected() {
        assert!(CampaignSpec::parse("algo=s3ca bogus=1").is_err());
        assert!(CampaignSpec::parse("algo=quantum").is_err());
        assert!(CampaignSpec::parse("budget=-1").is_err());
        assert!(CampaignSpec::parse("eval_worlds=0").is_err());
        assert!(CampaignSpec::parse("weights=uniform:1.5").is_err());
        assert!(CampaignSpec::parse("").is_ok(), "empty body takes defaults");
    }

    #[test]
    fn probe_spec_parses_deployment_lists() {
        let p = ProbeSpec::parse("worlds=32 seed=9 seeds=0;3;5 coupons=2:1;7:3").unwrap();
        assert_eq!(p.seeds, vec![NodeId(0), NodeId(3), NodeId(5)]);
        assert_eq!(p.coupons, vec![(NodeId(2), 1), (NodeId(7), 3)]);
        assert!(ProbeSpec::parse("coupons=2").is_err());
        assert!(ProbeSpec::parse("worlds=0").is_err());
    }
}
