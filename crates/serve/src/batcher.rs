//! Coalescing of concurrent evaluation probes into batched simulation.
//!
//! Every campaign ends with one Monte-Carlo evaluation of its final
//! deployment, and `PROBE` requests issue ad-hoc evaluations; under load,
//! many of these target the *same* resident backend at the same time.
//! Scoring `k` deployments with [`MonteCarloEvaluator::simulate_batch`] is
//! one pass over the world cache instead of `k`, so the batcher elects the
//! first arrival per backend as leader, lingers briefly to let concurrent
//! probes pile on, and runs the whole group as a single batch.
//!
//! Coalescing is **result-neutral**: batched simulation is bit-identical
//! to lone simulation (element `i` of `simulate_batch` equals a lone
//! `simulate` of deployment `i` — pinned by `osn-propagation`'s tests), so
//! whether a probe rode a batch or ran alone is unobservable in the reply.
//!
//! [`MonteCarloEvaluator::simulate_batch`]: osn_propagation::MonteCarloEvaluator::simulate_batch

use osn_graph::NodeId;
use osn_propagation::{DeploymentRef, McBackend, SimulationStats};
use s3crm_bench::dataset::LoadedDataset;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long a leader waits for followers before running the batch. Long
/// enough for genuinely concurrent probes to enqueue, far below any
/// campaign's evaluation time.
const LINGER: Duration = Duration::from_millis(1);

#[derive(Default)]
struct Slot {
    result: Mutex<Option<SimulationStats>>,
    cv: Condvar,
}

struct Job {
    seeds: Vec<NodeId>,
    coupons: Vec<u32>,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct GroupState {
    jobs: Vec<Job>,
    leader_active: bool,
}

#[derive(Default)]
struct Group {
    state: Mutex<GroupState>,
}

/// One batcher per daemon; groups form per backend key.
#[derive(Default)]
pub struct ProbeBatcher {
    groups: Mutex<HashMap<String, Arc<Group>>>,
    probes: AtomicU64,
    batches: AtomicU64,
}

impl ProbeBatcher {
    /// Evaluate `(seeds, coupons)` on `backend`, riding a shared batch when
    /// other probes for the same `key` are in flight. `key` must uniquely
    /// identify the backend (the caller derives it from the backend's cache
    /// parameters and graph variant) so grouped jobs really share worlds.
    pub fn submit(
        &self,
        key: &str,
        backend: &McBackend,
        ds: &LoadedDataset,
        seeds: Vec<NodeId>,
        coupons: Vec<u32>,
    ) -> SimulationStats {
        let group = {
            let mut groups = self.groups.lock().expect("batcher groups lock");
            groups.entry(key.to_string()).or_default().clone()
        };
        let slot = Arc::new(Slot::default());
        let is_leader = {
            let mut st = group.state.lock().expect("batcher group lock");
            st.jobs.push(Job {
                seeds,
                coupons,
                slot: slot.clone(),
            });
            if st.leader_active {
                false
            } else {
                st.leader_active = true;
                true
            }
        };
        if is_leader {
            std::thread::sleep(LINGER);
            let jobs = {
                let mut st = group.state.lock().expect("batcher group lock");
                st.leader_active = false;
                std::mem::take(&mut st.jobs)
            };
            let batch: Vec<DeploymentRef<'_>> = jobs
                .iter()
                .map(|j| DeploymentRef {
                    seeds: &j.seeds,
                    coupons: &j.coupons,
                })
                .collect();
            let stats = backend
                .evaluator(&ds.graph, &ds.data)
                .simulate_batch(&batch);
            self.probes.fetch_add(jobs.len() as u64, Ordering::Relaxed);
            self.batches.fetch_add(1, Ordering::Relaxed);
            for (job, s) in jobs.iter().zip(stats) {
                *job.slot.result.lock().expect("batcher slot lock") = Some(s);
                job.slot.cv.notify_all();
            }
        }
        let mut r = slot.result.lock().expect("batcher slot lock");
        while r.is_none() {
            r = slot.cv.wait(r).expect("batcher slot wait");
        }
        r.take().expect("batcher result present")
    }

    /// `(probes evaluated, batches run)` — `probes > batches` means
    /// coalescing actually merged traffic.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.probes.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3crm_bench::Effort;

    fn tiny_dataset() -> LoadedDataset {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let fixture = dir.join("../bench/fixtures/smoke_snap.txt");
        s3crm_bench::dataset::load_dataset(&fixture, &Effort::micro()).expect("fixture loads")
    }

    #[test]
    fn coalesced_probes_are_bit_identical_to_lone_simulation() {
        let ds = tiny_dataset();
        let backend = McBackend::sample(&ds.graph, 64, 7);
        let batcher = ProbeBatcher::default();
        let deployments: Vec<(Vec<NodeId>, Vec<u32>)> = (0..8)
            .map(|i| {
                let mut coupons = vec![0u32; ds.graph.node_count()];
                coupons[(i * 5) % ds.graph.node_count()] = 1 + i as u32 % 3;
                (vec![NodeId(i as u32)], coupons)
            })
            .collect();
        let batched: Vec<SimulationStats> = std::thread::scope(|s| {
            let handles: Vec<_> = deployments
                .iter()
                .map(|(seeds, coupons)| {
                    let (batcher, backend, ds) = (&batcher, &backend, &ds);
                    s.spawn(move || {
                        batcher.submit("eval|w64|s7", backend, ds, seeds.clone(), coupons.clone())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ((seeds, coupons), got) in deployments.iter().zip(&batched) {
            let lone = backend
                .evaluator(&ds.graph, &ds.data)
                .simulate(seeds, coupons);
            assert_eq!(
                got.expected_benefit.to_bits(),
                lone.expected_benefit.to_bits(),
                "coalesced probe diverged from lone simulation"
            );
            assert_eq!(got.mean_activated.to_bits(), lone.mean_activated.to_bits());
        }
        let (probes, batches) = batcher.counters();
        assert_eq!(probes, 8);
        assert!(batches <= probes, "batch count cannot exceed probe count");
    }
}
