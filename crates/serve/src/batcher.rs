//! Coalescing of concurrent evaluation probes into batched simulation,
//! with panic failover for parked followers.
//!
//! Every campaign ends with one Monte-Carlo evaluation of its final
//! deployment, and `PROBE` requests issue ad-hoc evaluations; under load,
//! many of these target the *same* resident backend at the same time.
//! Scoring `k` deployments with [`MonteCarloEvaluator::simulate_batch`] is
//! one pass over the world cache instead of `k`, so the batcher elects the
//! first arrival per backend as leader, lingers briefly to let concurrent
//! probes pile on, and runs the whole group as a single batch.
//!
//! Coalescing is **result-neutral**: batched simulation is bit-identical
//! to lone simulation (element `i` of `simulate_batch` equals a lone
//! `simulate` of deployment `i` — pinned by `osn-propagation`'s tests), so
//! whether a probe rode a batch or ran alone is unobservable in the reply.
//!
//! # Failure semantics
//!
//! The leader runs follower jobs on *its* thread, so a panic there (a bug,
//! or an injected fault) would otherwise strand every parked follower on a
//! condvar nobody will ever signal. [`LeaderReign`] is the RAII failover:
//! from election to completion the leader holds a guard whose drop —
//! normal or during unwind — clears the leadership flag, bumps the group's
//! generation counter, and fails over any jobs that never got results.
//! Followers then observe a typed [`BatchFailed`] instead of a hang, the
//! next submission elects a fresh leader, and the panic itself propagates
//! to the leader's own caller (where the connection layer turns it into an
//! `ERR internal` reply).
//!
//! [`MonteCarloEvaluator::simulate_batch`]: osn_propagation::MonteCarloEvaluator::simulate_batch

use osn_graph::NodeId;
use osn_propagation::{DeploymentRef, McBackend, SimulationStats};
use s3crm_bench::dataset::LoadedDataset;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How long a leader waits for followers before running the batch. Long
/// enough for genuinely concurrent probes to enqueue, far below any
/// campaign's evaluation time.
const LINGER: Duration = Duration::from_millis(1);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A batch died before producing this probe's result: its leader panicked
/// (the generation records which reign failed). The *submission* failed,
/// not the deployment — retrying on a fresh batch is sound.
#[derive(Clone, Debug)]
pub struct BatchFailed {
    pub generation: u64,
}

impl std::fmt::Display for BatchFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "internal evaluation batch failed (leader died, generation {})",
            self.generation
        )
    }
}

#[derive(Default)]
struct Slot {
    result: Mutex<Option<Result<SimulationStats, BatchFailed>>>,
    cv: Condvar,
}

impl Slot {
    fn fill(&self, value: Result<SimulationStats, BatchFailed>) {
        *lock(&self.result) = Some(value);
        self.cv.notify_all();
    }
}

struct Job {
    seeds: Vec<NodeId>,
    coupons: Vec<u32>,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct GroupState {
    jobs: Vec<Job>,
    leader_active: bool,
    /// Bumped every time a leader reign ends without serving its jobs;
    /// failed followers carry the generation in their error.
    generation: u64,
}

#[derive(Default)]
struct Group {
    state: Mutex<GroupState>,
}

/// RAII leadership over one group: covers the window from election to
/// result delivery. Drop without [`complete`](Self::complete) — any panic
/// escape path — fails over parked followers instead of stranding them.
struct LeaderReign<'a> {
    group: &'a Group,
    /// Jobs taken out of the group (None until the take step; a panic
    /// before the take fails whatever is parked in the group instead).
    taken: Option<Vec<Job>>,
    served: bool,
}

impl<'a> LeaderReign<'a> {
    fn new(group: &'a Group) -> Self {
        LeaderReign {
            group,
            taken: None,
            served: false,
        }
    }

    /// End the linger: clear the leadership flag and claim every parked
    /// job. New arrivals elect a fresh leader from here on.
    fn take_jobs(&mut self) -> &[Job] {
        let mut st = lock(&self.group.state);
        st.leader_active = false;
        let jobs = std::mem::take(&mut st.jobs);
        drop(st);
        self.taken.insert(jobs).as_slice()
    }

    /// Deliver one result per taken job, in order.
    fn complete(mut self, stats: Vec<SimulationStats>) {
        let jobs = self.taken.take().unwrap_or_default();
        for (job, s) in jobs.iter().zip(stats) {
            job.slot.fill(Ok(s));
        }
        self.served = true;
    }
}

impl Drop for LeaderReign<'_> {
    fn drop(&mut self) {
        if self.served {
            return;
        }
        // The reign is ending abnormally (panic unwind, or a bug skipped
        // `complete`). Fail over everything this leader was responsible
        // for: jobs it already took, plus — if it died before the take —
        // whatever is still parked in the group.
        let mut st = lock(&self.group.state);
        st.leader_active = false;
        st.generation += 1;
        let generation = st.generation;
        let mut orphans = std::mem::take(&mut st.jobs);
        drop(st);
        if let Some(taken) = self.taken.take() {
            orphans.extend(taken);
        }
        for job in orphans {
            job.slot.fill(Err(BatchFailed { generation }));
        }
    }
}

/// One batcher per daemon; groups form per backend key.
#[derive(Default)]
pub struct ProbeBatcher {
    groups: Mutex<HashMap<String, Arc<Group>>>,
    probes: AtomicU64,
    batches: AtomicU64,
    failed_batches: AtomicU64,
}

impl ProbeBatcher {
    /// Evaluate `(seeds, coupons)` on `backend`, riding a shared batch when
    /// other probes for the same `key` are in flight. `key` must uniquely
    /// identify the backend (the caller derives it from the backend's cache
    /// parameters and graph variant) so grouped jobs really share worlds.
    ///
    /// `Err(BatchFailed)` means this probe's batch leader died before
    /// delivering results; the deployment was never scored and the caller
    /// may retry on a fresh batch.
    pub fn submit(
        &self,
        key: &str,
        backend: &McBackend,
        ds: &LoadedDataset,
        seeds: Vec<NodeId>,
        coupons: Vec<u32>,
    ) -> Result<SimulationStats, BatchFailed> {
        let group = {
            let mut groups = lock(&self.groups);
            groups.entry(key.to_string()).or_default().clone()
        };
        let slot = Arc::new(Slot::default());
        let is_leader = {
            let mut st = lock(&group.state);
            st.jobs.push(Job {
                seeds,
                coupons,
                slot: slot.clone(),
            });
            if st.leader_active {
                false
            } else {
                st.leader_active = true;
                true
            }
        };
        if is_leader {
            // From here to `complete`, the reign guard guarantees parked
            // followers are failed over if this thread dies.
            let mut reign = LeaderReign::new(&group);
            std::thread::sleep(LINGER);
            // Chaos hook: stretch the linger (so tests can deterministically
            // pile followers onto one batch) or kill the leader before the
            // take — either way the reign guard keeps followers unblocked.
            osn_fault::point("serve.batcher.linger");
            let jobs = reign.take_jobs();
            let batch: Vec<DeploymentRef<'_>> = jobs
                .iter()
                .map(|j| DeploymentRef {
                    seeds: &j.seeds,
                    coupons: &j.coupons,
                })
                .collect();
            let n_jobs = jobs.len();
            // Chaos hook: a panic here is the "leader dies mid-batch" case.
            osn_fault::point("serve.batcher.batch");
            let stats = backend
                .evaluator(&ds.graph, &ds.data)
                .simulate_batch(&batch);
            self.probes.fetch_add(n_jobs as u64, Ordering::Relaxed);
            self.batches.fetch_add(1, Ordering::Relaxed);
            reign.complete(stats);
        }
        let mut r = lock(&slot.result);
        while r.is_none() {
            r = slot.cv.wait(r).unwrap_or_else(PoisonError::into_inner);
        }
        let outcome = r.take().expect("batcher result present");
        if outcome.is_err() {
            self.failed_batches.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// `(probes evaluated, batches run)` — `probes > batches` means
    /// coalescing actually merged traffic.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.probes.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
        )
    }

    /// Probes that came back [`BatchFailed`] because their leader died.
    pub fn failed_probes(&self) -> u64 {
        self.failed_batches.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3crm_bench::Effort;

    fn tiny_dataset() -> LoadedDataset {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let fixture = dir.join("../bench/fixtures/smoke_snap.txt");
        s3crm_bench::dataset::load_dataset(&fixture, &Effort::micro()).expect("fixture loads")
    }

    #[test]
    fn coalesced_probes_are_bit_identical_to_lone_simulation() {
        let ds = tiny_dataset();
        let backend = McBackend::sample(&ds.graph, 64, 7);
        let batcher = ProbeBatcher::default();
        let deployments: Vec<(Vec<NodeId>, Vec<u32>)> = (0..8)
            .map(|i| {
                let mut coupons = vec![0u32; ds.graph.node_count()];
                coupons[(i * 5) % ds.graph.node_count()] = 1 + i as u32 % 3;
                (vec![NodeId(i as u32)], coupons)
            })
            .collect();
        let batched: Vec<SimulationStats> = std::thread::scope(|s| {
            let handles: Vec<_> = deployments
                .iter()
                .map(|(seeds, coupons)| {
                    let (batcher, backend, ds) = (&batcher, &backend, &ds);
                    s.spawn(move || {
                        batcher
                            .submit("eval|w64|s7", backend, ds, seeds.clone(), coupons.clone())
                            .expect("healthy batch")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ((seeds, coupons), got) in deployments.iter().zip(&batched) {
            let lone = backend
                .evaluator(&ds.graph, &ds.data)
                .simulate(seeds, coupons);
            assert_eq!(
                got.expected_benefit.to_bits(),
                lone.expected_benefit.to_bits(),
                "coalesced probe diverged from lone simulation"
            );
            assert_eq!(got.mean_activated.to_bits(), lone.mean_activated.to_bits());
        }
        let (probes, batches) = batcher.counters();
        assert_eq!(probes, 8);
        assert!(batches <= probes, "batch count cannot exceed probe count");
        assert_eq!(batcher.failed_probes(), 0);
    }

    /// A leader that panics mid-batch (here: `simulate_batch` blows up on a
    /// malformed deployment) must fail over its followers — typed error,
    /// not a hang — and the next round on the same group must succeed.
    /// This pins the [`LeaderReign`] guard without any fault injection.
    #[test]
    fn leader_panic_fails_over_followers_and_next_round_succeeds() {
        let ds = tiny_dataset();
        let backend = McBackend::sample(&ds.graph, 32, 3);
        let batcher = ProbeBatcher::default();
        let n = ds.graph.node_count();

        // A coupons vector of the wrong length makes the evaluator panic
        // on an out-of-bounds index — a stand-in for any internal bug.
        let bogus_coupons = vec![1u32; 1];
        let leader = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batcher.submit("k", &backend, &ds, vec![NodeId(0)], bogus_coupons.clone())
        }));
        assert!(
            leader.is_err(),
            "malformed deployment must panic the leader"
        );

        // The group is not wedged: leadership was released by the reign
        // guard, so a fresh submission elects a new leader and succeeds,
        // byte-identical to a lone simulation.
        let seeds = vec![NodeId(1)];
        let mut coupons = vec![0u32; n];
        coupons[2] = 1;
        let ok = batcher
            .submit("k", &backend, &ds, seeds.clone(), coupons.clone())
            .expect("fresh batch after leader death");
        let lone = backend
            .evaluator(&ds.graph, &ds.data)
            .simulate(&seeds, &coupons);
        assert_eq!(
            ok.expected_benefit.to_bits(),
            lone.expected_benefit.to_bits()
        );
    }

    /// Concurrent followers parked behind a panicking leader receive
    /// `BatchFailed` promptly (no deadlock), and the error carries the
    /// bumped generation.
    #[test]
    fn followers_parked_behind_a_dead_leader_get_typed_failures() {
        let ds = tiny_dataset();
        let backend = McBackend::sample(&ds.graph, 32, 3);
        let batcher = Arc::new(ProbeBatcher::default());
        let n = ds.graph.node_count();

        // The leader's own deployment is malformed; followers' are fine.
        // Followers that race into the same batch must all be failed over;
        // any that arrive after the leader took its jobs simply run on a
        // fresh batch and succeed — both outcomes are sound, hanging is
        // not.
        std::thread::scope(|s| {
            let leader = {
                let (batcher, backend, ds) = (Arc::clone(&batcher), &backend, &ds);
                s.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        batcher.submit("k", backend, ds, vec![NodeId(0)], vec![1u32; 1])
                    }))
                })
            };
            let followers: Vec<_> = (0..4)
                .map(|i| {
                    let (batcher, backend, ds) = (Arc::clone(&batcher), &backend, &ds);
                    s.spawn(move || {
                        let mut coupons = vec![0u32; n];
                        coupons[i % n] = 1;
                        batcher.submit("k", backend, ds, vec![NodeId(i as u32)], coupons)
                    })
                })
                .collect();
            assert!(leader.join().unwrap().is_err(), "leader must panic");
            for f in followers {
                // Either failed over (rode the dead leader's batch) or
                // succeeded (fresh batch) — but never hangs, which the
                // scoped join itself enforces.
                let _ = f.join().unwrap();
            }
        });
    }
}
