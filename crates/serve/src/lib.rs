//! `osn-serve` — a long-lived campaign-allocation daemon.
//!
//! The `repro` binary answers one experiment per process: it loads the
//! graph, samples every world cache, runs the campaign, and exits — so
//! back-to-back campaigns on the same network pay the full setup cost each
//! time. This crate keeps everything resident instead: the loaded dataset,
//! every sampled [`osn_propagation::McBackend`] (world cache + decoded
//! lane blocks), and the re-weighted graph variants live for the lifetime
//! of the process, shared zero-copy across concurrent campaigns.
//!
//! # Protocol
//!
//! Line-delimited text over TCP (`std::net` only — the build environment
//! has no async runtime, and none is needed for a thread-per-connection
//! daemon). Requests are single lines; multi-line replies are bracketed by
//! `OK …` and `END`:
//!
//! | request | reply |
//! |---|---|
//! | `PING` | `PONG` |
//! | `INFO` | `OK` + `key=value` lines + `END` |
//! | `CAMPAIGN k=v …` | `OK rows=N` + `SUMMARY`/`DEPLOY` CSV lines + `TELEMETRY …` + `END` |
//! | `PROBE k=v …` | `STATS benefit=… activated=… …` |
//! | `SHUTDOWN` | `BYE`, then the daemon stops accepting |
//!
//! Any malformed request gets a one-line `ERR <message>`.
//!
//! # Determinism
//!
//! Campaign replies contain no wall-clock data outside the `TELEMETRY`
//! line, and every algorithm in the workspace is bit-deterministic for a
//! given spec (world `i` is RNG stream `i`; see `osn-propagation`), so the
//! `SUMMARY` and `DEPLOY` lines of a campaign are byte-identical whether it
//! ran alone, concurrently with others, or in-process via
//! [`state::ServeState::run_campaign`] (the `loadgen --serial` reference
//! path). CI diffs the two at tolerance zero.
//!
//! # Concurrency model
//!
//! One OS thread per connection; campaigns share the process-wide
//! `osn-pool` for their inner parallelism. The [`admission::Admission`]
//! gate bounds in-flight campaigns, and the [`batcher::ProbeBatcher`]
//! coalesces concurrent evaluation probes against the same resident
//! backend into single `simulate_batch` passes (batching is result-neutral
//! because batched simulation is bit-identical to lone simulation).
//!
//! # Failure semantics
//!
//! The daemon is long-lived, so every failure mode has a defined,
//! connection-local outcome — nothing takes the process down, wedges a
//! peer, or changes a result:
//!
//! * **Panics are isolated.** `CAMPAIGN`/`PROBE` execution runs under
//!   `catch_unwind`; a panicking request becomes a one-line
//!   `ERR internal: …` reply. Every resource it held returns via RAII —
//!   the admission [`admission::Permit`] releases on unwind, and a dying
//!   batch leader's [`batcher`] reign guard bumps the group generation and
//!   fails parked followers over with a typed error instead of a hang.
//! * **Overload sheds, it does not queue.** A campaign that cannot get an
//!   admission slot within the configured wait is refused with
//!   `ERR BUSY retry-after-ms=N`; the [`client::RetryingClient`] honors
//!   the hint with jittered exponential backoff.
//! * **Slow or hostile peers are bounded.** Per-connection read/write
//!   socket deadlines ([`server::ServeOptions`]) cap how long a dead peer
//!   holds a thread, and request lines are read under a byte cap — an
//!   oversized line is drained in constant memory and answered with
//!   `ERR line too long` (the connection survives).
//! * **Shutdown drains.** `SHUTDOWN` stops the accept loop, refuses new
//!   requests with `ERR draining`, lets in-flight campaigns finish under a
//!   deadline, then force-closes stragglers; [`server::Server::wait`]
//!   returns a [`server::DrainReport`] instead of panicking.
//! * **Retry cannot corrupt.** Campaigns are bit-deterministic per spec,
//!   so a retried submission returns the byte-identical reply the original
//!   would have — `loadgen --chaos` asserts exactly this while an
//!   `osn-fault` plan fires injected I/O errors, delays, and panics.
//!
//! The injection points themselves (`serve.campaign.run`,
//! `serve.batcher.*`, `serve.conn.*`, `graph.oscg.*`, `graph.shard.*`)
//! compile to no-ops unless the `fault-injection` feature is on.

pub mod admission;
pub mod batcher;
pub mod client;
pub mod server;
pub mod spec;
pub mod state;

pub use client::{CampaignError, Client, RetryPolicy, RetryingClient};
pub use server::{DrainReport, ServeOptions};
pub use spec::{CampaignSpec, WeightChoice};
pub use state::{CampaignReply, ServeState};
