//! `osn-serve` — a long-lived campaign-allocation daemon.
//!
//! The `repro` binary answers one experiment per process: it loads the
//! graph, samples every world cache, runs the campaign, and exits — so
//! back-to-back campaigns on the same network pay the full setup cost each
//! time. This crate keeps everything resident instead: the loaded dataset,
//! every sampled [`osn_propagation::McBackend`] (world cache + decoded
//! lane blocks), and the re-weighted graph variants live for the lifetime
//! of the process, shared zero-copy across concurrent campaigns.
//!
//! # Protocol
//!
//! Line-delimited text over TCP (`std::net` only — the build environment
//! has no async runtime, and none is needed for a thread-per-connection
//! daemon). Requests are single lines; multi-line replies are bracketed by
//! `OK …` and `END`:
//!
//! | request | reply |
//! |---|---|
//! | `PING` | `PONG` |
//! | `INFO` | `OK` + `key=value` lines + `END` |
//! | `CAMPAIGN k=v …` | `OK rows=N` + `SUMMARY`/`DEPLOY` CSV lines + `TELEMETRY …` + `END` |
//! | `PROBE k=v …` | `STATS benefit=… activated=… …` |
//! | `SHUTDOWN` | `BYE`, then the daemon stops accepting |
//!
//! Any malformed request gets a one-line `ERR <message>`.
//!
//! # Determinism
//!
//! Campaign replies contain no wall-clock data outside the `TELEMETRY`
//! line, and every algorithm in the workspace is bit-deterministic for a
//! given spec (world `i` is RNG stream `i`; see `osn-propagation`), so the
//! `SUMMARY` and `DEPLOY` lines of a campaign are byte-identical whether it
//! ran alone, concurrently with others, or in-process via
//! [`state::ServeState::run_campaign`] (the `loadgen --serial` reference
//! path). CI diffs the two at tolerance zero.
//!
//! # Concurrency model
//!
//! One OS thread per connection; campaigns share the process-wide
//! `osn-pool` for their inner parallelism. The [`admission::Admission`]
//! gate bounds in-flight campaigns, and the [`batcher::ProbeBatcher`]
//! coalesces concurrent evaluation probes against the same resident
//! backend into single `simulate_batch` passes (batching is result-neutral
//! because batched simulation is bit-identical to lone simulation).

pub mod admission;
pub mod batcher;
pub mod client;
pub mod server;
pub mod spec;
pub mod state;

pub use client::Client;
pub use spec::{CampaignSpec, WeightChoice};
pub use state::{CampaignReply, ServeState};
