//! Blocking client for the `osn-serve` protocol, used by `loadgen`, the
//! integration tests, and anything else that wants to talk to the daemon
//! without hand-rolling the framing.

use crate::spec::CampaignSpec;
use crate::state::CampaignReply;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One protocol connection. Requests are serial per connection; open more
/// connections for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Send one request line and collect the full reply: a single line, or
    /// everything through `END` for `OK …`-bracketed replies.
    pub fn request(&mut self, line: &str) -> std::io::Result<Vec<String>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let first = self.read_line()?;
        let mut lines = vec![first];
        if lines[0] == "OK" || lines[0].starts_with("OK ") {
            loop {
                let l = self.read_line()?;
                let done = l == "END";
                lines.push(l);
                if done {
                    break;
                }
            }
        }
        Ok(lines)
    }

    /// `PING` round trip; true on `PONG`.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        Ok(self.request("PING")? == ["PONG"])
    }

    /// Run a campaign; `Ok(Err(msg))` is a well-formed server-side
    /// rejection, the outer `Err` a transport failure. The inner `Ok`
    /// carries the deterministic payload lines (see
    /// [`CampaignReply::deterministic_subset`]).
    pub fn campaign(
        &mut self,
        spec: &CampaignSpec,
    ) -> std::io::Result<Result<Vec<String>, String>> {
        let lines = self.request(&format!("CAMPAIGN {}", spec.to_line()))?;
        if let Some(err) = lines[0].strip_prefix("ERR ") {
            return Ok(Err(err.to_string()));
        }
        if lines.last().map(String::as_str) != Some("END") {
            return Ok(Err(format!("truncated reply: {lines:?}")));
        }
        Ok(Ok(CampaignReply::deterministic_subset(&lines)))
    }

    /// Ask the daemon to stop accepting; true on `BYE`.
    pub fn shutdown(&mut self) -> std::io::Result<bool> {
        Ok(self.request("SHUTDOWN")? == ["BYE"])
    }
}
