//! Blocking client for the `osn-serve` protocol, used by `loadgen`, the
//! integration tests, and anything else that wants to talk to the daemon
//! without hand-rolling the framing.
//!
//! Two layers: [`Client`] is one raw connection (errors surface as-is);
//! [`RetryingClient`] classifies campaign failures ([`CampaignError`]) and
//! retries the retry-safe ones — `BUSY` shedding, transport drops, internal
//! (panic-isolated) errors — with jittered exponential backoff and
//! reconnection. Campaigns are idempotent (bit-deterministic per spec), so
//! retrying a failed submission can never change a result, only recover it.

use crate::spec::CampaignSpec;
use crate::state::CampaignReply;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One protocol connection. Requests are serial per connection; open more
/// connections for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Send one request line and collect the full reply: a single line, or
    /// everything through `END` for `OK …`-bracketed replies.
    pub fn request(&mut self, line: &str) -> std::io::Result<Vec<String>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let first = self.read_line()?;
        let mut lines = vec![first];
        if lines[0] == "OK" || lines[0].starts_with("OK ") {
            loop {
                let l = self.read_line()?;
                let done = l == "END";
                lines.push(l);
                if done {
                    break;
                }
            }
        }
        Ok(lines)
    }

    /// `PING` round trip; true on `PONG`.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        Ok(self.request("PING")? == ["PONG"])
    }

    /// Run a campaign; `Ok(Err(msg))` is a well-formed server-side
    /// rejection, the outer `Err` a transport failure. The inner `Ok`
    /// carries the deterministic payload lines (see
    /// [`CampaignReply::deterministic_subset`]).
    pub fn campaign(
        &mut self,
        spec: &CampaignSpec,
    ) -> std::io::Result<Result<Vec<String>, String>> {
        let lines = self.request(&format!("CAMPAIGN {}", spec.to_line()))?;
        if let Some(err) = lines[0].strip_prefix("ERR ") {
            return Ok(Err(err.to_string()));
        }
        if lines.last().map(String::as_str) != Some("END") {
            return Ok(Err(format!("truncated reply: {lines:?}")));
        }
        Ok(Ok(CampaignReply::deterministic_subset(&lines)))
    }

    /// Ask the daemon to stop accepting; true on `BYE`.
    pub fn shutdown(&mut self) -> std::io::Result<bool> {
        Ok(self.request("SHUTDOWN")? == ["BYE"])
    }
}

/// How a campaign submission failed, classified for retry decisions.
#[derive(Clone, Debug)]
pub enum CampaignError {
    /// Load-shed by the admission gate; the server suggests a retry delay.
    /// Retry-safe by construction.
    Busy { retry_after: Duration },
    /// The daemon is shutting down; retrying against it is pointless.
    Draining,
    /// A panic-isolated internal failure (`ERR internal …`). The campaign
    /// never completed, so a retry is safe — and under fault injection,
    /// usually succeeds.
    Internal(String),
    /// The server rejected the request as malformed or out of range.
    /// Deterministic: retrying the same spec can only fail the same way.
    Rejected(String),
    /// The connection itself failed (reset, timeout, refused). The reply
    /// was never observed, but campaigns are idempotent, so retry.
    Transport(String),
}

impl CampaignError {
    /// Classify a server-side `ERR …` message.
    fn from_err_line(msg: &str) -> CampaignError {
        if let Some(rest) = msg.strip_prefix("BUSY") {
            let retry_ms = rest
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("retry-after-ms="))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(50);
            CampaignError::Busy {
                retry_after: Duration::from_millis(retry_ms),
            }
        } else if msg.starts_with("draining") {
            CampaignError::Draining
        } else if msg.starts_with("internal") {
            CampaignError::Internal(msg.to_string())
        } else {
            CampaignError::Rejected(msg.to_string())
        }
    }

    /// Whether a retry of the same spec can succeed.
    pub fn retryable(&self) -> bool {
        !matches!(self, CampaignError::Rejected(_) | CampaignError::Draining)
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Busy { retry_after } => {
                write!(f, "busy (retry after {} ms)", retry_after.as_millis())
            }
            CampaignError::Draining => write!(f, "daemon draining"),
            CampaignError::Internal(m) => write!(f, "{m}"),
            CampaignError::Rejected(m) => write!(f, "rejected: {m}"),
            CampaignError::Transport(m) => write!(f, "transport: {m}"),
        }
    }
}

/// Retry policy for [`RetryingClient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts before giving up (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `k` (0-based) is `base * 2^k`, capped, then
    /// jittered to 50–100% of that value.
    pub base_backoff: Duration,
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before 0-based retry `attempt`, honoring a
    /// server-provided floor (the `retry-after-ms` hint). Deterministic in
    /// `(jitter_seed, attempt)` so load tests stay reproducible.
    pub fn backoff(&self, attempt: u32, floor: Option<Duration>, jitter_seed: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        // splitmix64: cheap, seedable, and good enough to de-synchronize
        // retry storms across concurrent clients.
        let mut z = jitter_seed
            .wrapping_add(attempt as u64 + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jittered = exp.mul_f64(0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 * 0.5);
        jittered.max(floor.unwrap_or(Duration::ZERO))
    }
}

/// A reconnecting, retrying campaign client: the failure-semantics-aware
/// layer `loadgen --chaos` drives. Keeps one connection alive across
/// successes and rebuilds it after transport errors.
pub struct RetryingClient {
    addr: std::net::SocketAddr,
    policy: RetryPolicy,
    jitter_seed: u64,
    conn: Option<Client>,
    retries: u64,
}

impl RetryingClient {
    pub fn new(addr: std::net::SocketAddr, policy: RetryPolicy, jitter_seed: u64) -> Self {
        RetryingClient {
            addr,
            policy,
            jitter_seed,
            conn: None,
            retries: 0,
        }
    }

    /// Total retries performed over this client's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn attempt(&mut self, spec: &CampaignSpec) -> Result<Vec<String>, CampaignError> {
        if self.conn.is_none() {
            self.conn = Some(
                Client::connect(self.addr).map_err(|e| CampaignError::Transport(e.to_string()))?,
            );
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        match conn.campaign(spec) {
            Ok(Ok(lines)) => Ok(lines),
            Ok(Err(msg)) => Err(CampaignError::from_err_line(&msg)),
            Err(e) => {
                // The connection is in an unknown state; rebuild it.
                self.conn = None;
                Err(CampaignError::Transport(e.to_string()))
            }
        }
    }

    /// Run `spec`, retrying retry-safe failures under the policy. Returns
    /// the deterministic payload lines, or the last error once attempts
    /// are exhausted (non-retryable errors return immediately).
    pub fn campaign(&mut self, spec: &CampaignSpec) -> Result<Vec<String>, CampaignError> {
        let mut last = None;
        for attempt in 0..self.policy.max_attempts {
            match self.attempt(spec) {
                Ok(lines) => return Ok(lines),
                Err(e) => {
                    if !e.retryable() || attempt + 1 == self.policy.max_attempts {
                        return Err(e);
                    }
                    let floor = match &e {
                        CampaignError::Busy { retry_after } => Some(*retry_after),
                        _ => None,
                    };
                    self.retries += 1;
                    std::thread::sleep(self.policy.backoff(attempt, floor, self.jitter_seed));
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or(CampaignError::Internal("no attempts made".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn err_lines_classify_for_retry() {
        let busy = CampaignError::from_err_line("BUSY retry-after-ms=120");
        assert!(matches!(
            busy,
            CampaignError::Busy { retry_after } if retry_after == Duration::from_millis(120)
        ));
        assert!(busy.retryable());
        assert!(CampaignError::from_err_line("internal: worlds collided").retryable());
        assert!(!CampaignError::from_err_line("draining (daemon shutting down)").retryable());
        assert!(!CampaignError::from_err_line("unknown algorithm \"x\"").retryable());
        assert!(CampaignError::Transport("reset".into()).retryable());
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_honors_the_floor() {
        let policy = RetryPolicy::default();
        let a = policy.backoff(3, None, 42);
        let b = policy.backoff(3, None, 42);
        assert_eq!(a, b, "same (seed, attempt) must give the same delay");
        // Jitter keeps the delay within [50%, 100%] of the exponential step.
        let exp = policy.base_backoff * 8;
        assert!(
            a >= exp / 2 && a <= exp,
            "delay {a:?} outside [{:?}, {exp:?}]",
            exp / 2
        );
        assert_ne!(
            policy.backoff(3, None, 1),
            policy.backoff(3, None, 2),
            "different seeds should (here) jitter differently"
        );
        // A server floor dominates a smaller computed backoff.
        let floored = policy.backoff(0, Some(Duration::from_millis(500)), 7);
        assert!(floored >= Duration::from_millis(500));
        // The cap holds for large attempt numbers (no overflow).
        assert!(policy.backoff(30, None, 9) <= policy.max_backoff);
    }
}
