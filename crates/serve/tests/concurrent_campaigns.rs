//! End-to-end daemon test: concurrent campaigns over TCP must be
//! byte-identical to the serial in-process reference — the contract the CI
//! load-generator smoke job enforces at scale.

use s3crm_serve::{server, CampaignReply, CampaignSpec, Client, ServeState};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../bench/fixtures/smoke_snap.txt")
}

/// A small mixed spec set: kernels, storages, algorithms, and budgets all
/// vary, so distinct configurations are genuinely in flight at once.
fn specs() -> Vec<CampaignSpec> {
    use osn_propagation::{CascadeKernel, WorldStorage};
    use s3crm_bench::Algorithm;
    let algorithms = [Algorithm::S3ca, Algorithm::ImU, Algorithm::PmL];
    (0..9)
        .map(|i| CampaignSpec {
            algorithm: algorithms[i % algorithms.len()],
            budget_mult: [1.0, 0.5, 2.0][i % 3],
            cascade_kernel: if i % 2 == 0 {
                CascadeKernel::Lane
            } else {
                CascadeKernel::Scalar
            },
            world_storage: if (i / 2) % 2 == 0 {
                WorldStorage::Sparse
            } else {
                WorldStorage::Dense
            },
            ..CampaignSpec::default()
        })
        .collect()
}

#[test]
fn concurrent_mixed_campaigns_match_the_serial_reference_byte_for_byte() {
    // The serial reference runs in a fresh state — no sharing whatsoever
    // with the daemon under test.
    let reference = ServeState::open(&fixture(), 1).expect("reference state");
    let expected: Vec<Vec<String>> = specs()
        .iter()
        .map(|s| {
            reference
                .run_campaign(s)
                .expect("serial campaign")
                .deterministic_lines()
        })
        .collect();

    let state = Arc::new(ServeState::open(&fixture(), 4).expect("daemon state"));
    let srv = server::spawn(state, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = srv.addr();

    // Two full client rounds over the spec set (18 concurrent campaigns):
    // the second round hits the resident backends the first one sampled.
    for round in 0..2 {
        std::thread::scope(|s| {
            for (i, spec) in specs().into_iter().enumerate() {
                let expected = &expected[i];
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let got = client
                        .campaign(&spec)
                        .expect("transport")
                        .expect("campaign accepted");
                    assert_eq!(
                        &got, expected,
                        "round {round} campaign {i} diverged from the serial reference"
                    );
                });
            }
        });
    }

    // Identical requests from many threads must all agree with each other.
    let identical = CampaignSpec::default();
    let replies: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let spec = identical;
                s.spawn(move || {
                    Client::connect(addr)
                        .expect("connect")
                        .campaign(&spec)
                        .expect("transport")
                        .expect("campaign accepted")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &replies[1..] {
        assert_eq!(r, &replies[0], "identical concurrent campaigns diverged");
    }

    let mut client = Client::connect(addr).expect("connect");
    assert!(client.ping().expect("ping"));
    let info = client.request("INFO").expect("info");
    assert_eq!(info.first().map(String::as_str), Some("OK"));
    assert!(info.iter().any(|l| l.starts_with("campaigns_served=")));
    assert!(
        client.shutdown().expect("shutdown request"),
        "daemon did not acknowledge shutdown"
    );
    let report = srv.wait();
    assert!(report.clean(), "drain was not clean: {report:?}");
}

#[test]
fn malformed_requests_get_err_replies_not_disconnects() {
    let state = Arc::new(ServeState::open(&fixture(), 2).expect("state"));
    let srv = server::spawn(state, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(srv.addr()).expect("connect");
    let reply = client.request("CAMPAIGN algo=warp-drive").expect("reply");
    assert!(reply[0].starts_with("ERR "), "{reply:?}");
    let reply = client.request("FROBNICATE").expect("reply");
    assert!(reply[0].starts_with("ERR "), "{reply:?}");
    // The connection survives malformed requests.
    assert!(client.ping().expect("ping after errors"));
    client.shutdown().expect("shutdown");
    srv.wait();
}

#[test]
fn multi_megabyte_request_line_is_rejected_and_the_connection_survives() {
    use std::io::{BufRead, BufReader, Write};
    let state = Arc::new(ServeState::open(&fixture(), 2).expect("state"));
    let options = server::ServeOptions {
        max_line_bytes: 64 * 1024,
        ..server::ServeOptions::default()
    };
    let srv = server::spawn_with(state, "127.0.0.1:0", options).expect("bind");

    // Raw socket: stream 4 MiB without a newline — far beyond the cap — to
    // exercise the constant-memory overflow drain, then a valid request.
    let mut stream = std::net::TcpStream::connect(srv.addr()).expect("connect");
    let chunk = vec![b'x'; 1 << 20];
    for _ in 0..4 {
        stream.write_all(&chunk).expect("write oversized line");
    }
    stream.write_all(b"\nPING\n").expect("finish lines");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read rejection");
    assert_eq!(line.trim_end(), "ERR line too long (max 65536 bytes)");
    line.clear();
    reader.read_line(&mut line).expect("read ping reply");
    assert_eq!(
        line.trim_end(),
        "PONG",
        "connection must stay line-aligned and usable after an oversized line"
    );
    drop(reader);
    drop(stream);

    let mut client = Client::connect(srv.addr()).expect("connect");
    client.shutdown().expect("shutdown");
    let report = srv.wait();
    assert!(report.clean(), "drain was not clean: {report:?}");
}

#[test]
fn wire_reply_round_trips_the_deterministic_payload() {
    let state = ServeState::open(&fixture(), 1).expect("state");
    let reply = state
        .run_campaign(&CampaignSpec::default())
        .expect("campaign");
    let wire = reply.wire_lines();
    assert!(wire[0].starts_with("OK rows="));
    assert_eq!(wire.last().map(String::as_str), Some("END"));
    assert_eq!(
        CampaignReply::deterministic_subset(&wire),
        reply.deterministic_lines(),
        "wire framing altered the deterministic payload"
    );
}
