//! Chaos suite: the hardened daemon under a deterministic `osn-fault`
//! plan. Requires the `fault-injection` feature (the `[[test]]` entry in
//! `Cargo.toml` gates it), so a default `cargo test` skips this file and
//! production builds carry no injection code at all.
//!
//! The suite runs as ONE test function: fault plans are process-global
//! (serialized by `Scenario`'s gate), and the fault-free reference replies
//! must be computed while *no* plan is installed — sequential sub-scenarios
//! make that ordering explicit instead of racing the test harness.
//!
//! The invariant under test everywhere: injected I/O errors, delays, and
//! panics may cost retries and throughput, but every reply that reports
//! success is byte-identical to the fault-free serial reference.

use osn_fault::Scenario;
use s3crm_serve::{server, CampaignSpec, Client, RetryPolicy, RetryingClient, ServeState};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../bench/fixtures/smoke_snap.txt")
}

/// The same deterministic mixed spec set the loadgen uses, small enough
/// for a test.
fn specs(n: usize) -> Vec<CampaignSpec> {
    use osn_propagation::{CascadeKernel, WorldStorage};
    use s3crm_bench::Algorithm;
    let algorithms = [Algorithm::S3ca, Algorithm::ImU, Algorithm::PmL];
    (0..n)
        .map(|i| CampaignSpec {
            algorithm: algorithms[i % algorithms.len()],
            budget_mult: [1.0, 0.5, 2.0][i % 3],
            cascade_kernel: if i % 2 == 0 {
                CascadeKernel::Lane
            } else {
                CascadeKernel::Scalar
            },
            world_storage: if (i / 2) % 2 == 0 {
                WorldStorage::Sparse
            } else {
                WorldStorage::Dense
            },
            ..CampaignSpec::default()
        })
        .collect()
}

#[test]
fn chaos_suite() {
    // Ground truth first, with no fault plan installed anywhere.
    let reference_state = ServeState::open(&fixture(), 1).expect("reference state");
    let expected: Vec<Vec<String>> = specs(9)
        .iter()
        .map(|s| {
            reference_state
                .run_campaign(s)
                .expect("fault-free reference campaign")
                .deterministic_lines()
        })
        .collect();
    drop(reference_state);

    faults_cost_retries_never_correctness(&expected);
    injected_graph_io_errors_surface_as_clean_open_failures();
    shutdown_drains_in_flight_campaigns_under_injected_delays(&expected);
    saturated_admission_sheds_busy_and_retries_recover(&expected);
}

/// The tentpole scenario: panics at the campaign and batch-leader sites,
/// an injected socket-write error, and probabilistic read delays — all at
/// once, against concurrent clients. Every campaign must still converge to
/// the byte-exact reference via retries.
fn faults_cost_retries_never_correctness(expected: &[Vec<String>]) {
    let _scenario = Scenario::new(
        "seed=7 \
         serve.campaign.run=panic@1 \
         serve.batcher.batch=panic@2 \
         serve.conn.write=ioerr@3 \
         serve.conn.read=delay,2:0.2 \
         serve.batcher.linger=delay,1:0.5",
    );
    let state = Arc::new(ServeState::open(&fixture(), 4).expect("daemon state"));
    let srv = server::spawn(state, "127.0.0.1:0").expect("bind");
    let addr = srv.addr();

    let total_retries: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = specs(9)
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let expected = &expected[i];
                s.spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 10,
                        base_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(50),
                    };
                    let mut client = RetryingClient::new(addr, policy, i as u64);
                    let got = client
                        .campaign(&spec)
                        .unwrap_or_else(|e| panic!("campaign {i} never recovered: {e}"));
                    assert_eq!(
                        &got, expected,
                        "campaign {i} reply diverged from the fault-free reference"
                    );
                    client.retries()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    // The plan's one-shot panics must actually have fired (and been
    // recovered from) — otherwise this test is vacuous.
    assert!(
        osn_fault::hits("serve.campaign.run") >= 9,
        "campaign fault site was not on the executed path"
    );
    assert!(
        total_retries >= 1,
        "injected panics should have forced at least one retry"
    );

    let mut client = Client::connect(addr).expect("connect");
    let info = client.request("INFO").expect("info");
    assert!(
        info.iter()
            .any(|l| l.starts_with("probe_batches_failed=") || l.starts_with("campaigns_served=")),
        "info should report failure counters: {info:?}"
    );
    client.shutdown().expect("shutdown");
    let report = srv.wait();
    assert!(report.clean(), "drain was not clean: {report:?}");
}

/// Storage-layer faults: an injected I/O error while opening a sharded
/// `.oscg` must surface as a clean `Err` from `ServeState::open` — no
/// panic, no partial state — and the very next open (fault spent) works.
fn injected_graph_io_errors_surface_as_clean_open_failures() {
    let dir = s3crm_tests::TempDir::new("chaos-sharded");
    let sharded_path = dir.file("smoke.oscg");
    s3crm_bench::dataset::convert_sharded(
        &fixture(),
        &sharded_path,
        s3crm_bench::dataset::ShardSpec::Count(2),
    )
    .expect("convert fixture");

    let _scenario = Scenario::new("graph.shard.open=ioerr@1");
    let err = match ServeState::open_with_budget(&sharded_path, 2, Some(1 << 20)) {
        Err(e) => e,
        Ok(_) => panic!("injected open fault must fail the load"),
    };
    assert!(
        err.contains("injected fault") && err.contains("graph.shard.open"),
        "error should carry the injected cause: {err}"
    );
    // `@1` fires exactly once: the retried open succeeds.
    let state = ServeState::open_with_budget(&sharded_path, 2, Some(1 << 20))
        .expect("second open succeeds after the one-shot fault");
    assert!(
        state.info_lines().contains(&"shards=2".to_string()),
        "recovered open must expose the sharded dataset"
    );
}

/// `SHUTDOWN` while campaigns are genuinely in flight (linger stretched by
/// an injected delay): in-flight requests finish with correct replies, the
/// drain is clean, and late requests are refused with `ERR draining`.
fn shutdown_drains_in_flight_campaigns_under_injected_delays(expected: &[Vec<String>]) {
    let _scenario = Scenario::new("serve.batcher.linger=delay,150");
    let state = Arc::new(ServeState::open(&fixture(), 4).expect("daemon state"));
    let srv = server::spawn(state, "127.0.0.1:0").expect("bind");
    let addr = srv.addr();

    std::thread::scope(|s| {
        let inflight: Vec<_> = (0..3)
            .map(|i| {
                let expected = &expected[i];
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let got = client
                        .campaign(&specs(9)[i])
                        .expect("transport")
                        .expect("in-flight campaign must finish during drain");
                    assert_eq!(&got, expected, "drained campaign {i} diverged");
                })
            })
            .collect();
        // Pull the plug only once the daemon itself reports all three
        // campaigns admitted (`inflight=3`): admission happens after a
        // request is registered as busy, so the drain is then guaranteed
        // to wait for every one of them. A bare sleep here was racy — a
        // client whose request had not yet been read would see its socket
        // force-closed instead of served.
        let mut killer = Client::connect(addr).expect("connect");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let info = killer.request("INFO").expect("info while campaigns run");
            if info.iter().any(|l| l == "inflight=3") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "campaigns never became concurrently in flight: {info:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(killer.shutdown().expect("shutdown request"));
        for h in inflight {
            h.join().unwrap();
        }
    });

    let report = srv.wait();
    assert!(
        report.clean(),
        "in-flight campaigns fit the drain deadline, yet: {report:?}"
    );
}

/// A saturated admission gate sheds with `BUSY retry-after-ms=…` instead
/// of queueing, the retrying client recovers, and the shed counter proves
/// shedding actually happened.
fn saturated_admission_sheds_busy_and_retries_recover(expected: &[Vec<String>]) {
    let _scenario = Scenario::new("serve.batcher.linger=delay,100");
    let state = Arc::new(
        ServeState::open(&fixture(), 1)
            .expect("daemon state")
            .with_admission_wait(Duration::from_millis(1)),
    );
    let srv = server::spawn(Arc::clone(&state), "127.0.0.1:0").expect("bind");
    let addr = srv.addr();

    std::thread::scope(|s| {
        for round in 0..2 {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let expected = &expected[i];
                    s.spawn(move || {
                        let policy = RetryPolicy {
                            max_attempts: 40,
                            base_backoff: Duration::from_millis(5),
                            max_backoff: Duration::from_millis(100),
                        };
                        let mut client = RetryingClient::new(addr, policy, (round * 4 + i) as u64);
                        let got = client
                            .campaign(&specs(9)[i])
                            .expect("shed campaigns must recover via retries");
                        assert_eq!(&got, expected, "shed-then-retried campaign diverged");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    });

    assert!(
        state.shed_campaigns() > 0,
        "a 1-slot gate under 4 concurrent 100ms campaigns must shed at least once"
    );
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    let report = srv.wait();
    assert!(report.clean(), "drain was not clean: {report:?}");
}
